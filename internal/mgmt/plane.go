// Package mgmt hosts many tenant router configurations inside one
// process — the XORP-style management shape for the combine machinery:
// every tenant's elements live in a single combined router under a
// "tenant/" name prefix, the read/write handler tree is the uniform
// control surface, and an HTTP/JSON API (http.go) exposes it.
//
// Control operations are incremental by default: a tenant
// create/swap/delete parses and optimizes only the affected tenant's
// configuration (cached by config hash, so re-admitting a known config
// skips even that), builds just its subgraph, and patches it into the
// running combined router at a scheduler quiescent point
// (Scheduler.SpliceTenant / SwapTenant / RemoveTenant) — O(tenant) per
// operation instead of the O(fleet) full rebuild the plane launched
// with, which survives as Options.FullRebuild for baselines and as the
// RebuildFull escape hatch. Swaps keep the zero-loss hot-swap
// semantics: same-name same-type elements carry their queue contents,
// counters, and table state across.
//
// Tenants with identical rulesets share fused classifier decision
// diagrams through a plane-wide hash-cons table
// (classifier.InternTable): admission runs whole-path fusion on the
// tenant's own subgraph and interns the resulting diagrams, so
// resident diagram nodes grow with distinct rulesets, not tenant
// count. Sharing is read-only — per-element counters stay private —
// and each tenant's subgraph keeps its *own* guard-generation
// counters (its build router's), so one tenant's route or config
// writes never invalidate a neighbor's flow fast path.
//
// The plane charges zero model cycles: it never attaches the simulated
// CPU, every control operation runs through Scheduler.SyncDo at
// dataplane-quiescent points, and nothing here is on the packet path.
package mgmt

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// Limits bound one tenant's resource footprint. Zero fields take the
// defaults below.
type Limits struct {
	// MaxElements caps the tenant's live element count at admission.
	MaxElements int
	// MaxQueueCapacity caps the sum of the tenant's Queue capacities —
	// its packet-buffer budget. Enforced at admission and again on
	// every runtime "capacity" handler write.
	MaxQueueCapacity int
}

// Default per-tenant limits.
const (
	DefaultMaxElements      = 512
	DefaultMaxQueueCapacity = 1 << 16
)

func (l Limits) withDefaults() Limits {
	if l.MaxElements <= 0 {
		l.MaxElements = DefaultMaxElements
	}
	if l.MaxQueueCapacity <= 0 {
		l.MaxQueueCapacity = DefaultMaxQueueCapacity
	}
	return l
}

// DeviceProvider supplies the device object bound for a tenant's named
// device (anything implementing elements.Device). Returning nil falls
// back to an idle in-memory device that receives nothing and accepts
// every transmit.
type DeviceProvider func(tenant, device string) interface{}

// Options configure a Plane.
type Options struct {
	// Registry resolves element classes; nil uses the builtin registry.
	Registry *core.Registry
	// Workers is the dataplane worker count (default 1). With more
	// than one the combined router runs on the free-running epoch
	// scheduler; control operations rendezvous through SyncDo.
	Workers int
	// Burst is the router-wide batch size (0 or 1 = scalar).
	Burst int
	// Devices provides tenant device bindings; nil means every device
	// is an idle in-memory one.
	Devices DeviceProvider
	// Limits are the default per-tenant limits.
	Limits Limits
	// FullRebuild reverts every control operation to the O(fleet)
	// path: rebuild the whole combined router and install it through a
	// full hot-swap. It exists as the measured baseline for the
	// incremental path and as a conservative fallback.
	FullRebuild bool
	// NoShare disables per-tenant classifier fusion and the
	// cross-tenant shared-diagram table, admitting configurations
	// exactly as written.
	NoShare bool
}

// TenantInfo is one tenant's control-plane view.
type TenantInfo struct {
	ID       string `json:"id"`
	Elements int    `json:"elements"`
	Swaps    int    `json:"swaps"`
	Limits   Limits `json:"limits"`
}

// Report is one tenant's telemetry snapshot, taken at a quiescent
// point so the counters are mutually consistent. CreateNS and SwapNS
// are the control-plane latencies of the tenant's admission and most
// recent hot-swap.
type Report struct {
	ID       string                    `json:"id"`
	Elements []core.ElementStatsReport `json:"elements"`
	Totals   core.StatsTotals          `json:"totals"`
	Swaps    int                       `json:"swaps"`
	CreateNS int64                     `json:"create_ns"`
	SwapNS   int64                     `json:"swap_ns"`
}

// OpStats aggregates one control-operation type's cost.
type OpStats struct {
	Count   int64 `json:"count"`
	LastNS  int64 `json:"last_ns"`
	TotalNS int64 `json:"total_ns"`
}

func (o *OpStats) record(d time.Duration) {
	o.Count++
	o.LastNS = d.Nanoseconds()
	o.TotalNS += o.LastNS
}

// PlaneReport is the plane-wide control surface snapshot served at
// GET /report.
type PlaneReport struct {
	Tenants     int  `json:"tenants"`
	Elements    int  `json:"elements"`
	Incremental bool `json:"incremental"`

	Create OpStats `json:"create"`
	Swap   OpStats `json:"swap"`
	Delete OpStats `json:"delete"`

	ConfigCacheHits   int64 `json:"config_cache_hits"`
	ConfigCacheMisses int64 `json:"config_cache_misses"`

	Sharing classifier.InternStats `json:"sharing"`
}

// cachedConfig is one parsed (and, unless NoShare, fused + interned)
// configuration, keyed by the config text's hash. It is
// tenant-neutral: device rewriting happens on a per-tenant clone.
type cachedConfig struct {
	graph  *graph.Router
	shared []string // shared fused-class names the config uses
}

// tenant is one admitted configuration.
type tenant struct {
	id       string
	graph    *graph.Router // device-rewritten, pre-prefix
	text     string        // original config text
	limits   Limits
	devices  []string // original (unprefixed) device names
	shared   []string // shared fused-class names (intern refcounts)
	swaps    int
	createNS int64
	swapNS   int64
}

// Plane hosts the tenants. All control-plane methods are safe for
// concurrent use; dataplane interaction happens only through the
// scheduler's quiescent points.
type Plane struct {
	opts Options
	reg  *core.Registry

	mu      sync.Mutex
	tenants map[string]*tenant
	cache   map[[sha256.Size]byte]*cachedConfig
	devs    map[string]interface{}
	sched   *core.Scheduler
	table   *classifier.InternTable
	running bool
	stop    chan struct{}
	done    chan struct{}

	stats struct {
		create, swap, delete OpStats
		cacheHits            int64
		cacheMisses          int64
	}
}

// NewPlane builds an empty plane with a running (but idle) combined
// router.
func NewPlane(opts Options) (*Plane, error) {
	if opts.Registry == nil {
		opts.Registry = elements.NewRegistry()
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	opts.Limits = opts.Limits.withDefaults()
	p := &Plane{
		opts:    opts,
		reg:     opts.Registry,
		tenants: map[string]*tenant{},
		cache:   map[[sha256.Size]byte]*cachedConfig{},
		devs:    map[string]interface{}{},
		table:   classifier.NewInternTable(),
	}
	rt, err := p.buildCombined()
	if err != nil {
		return nil, err
	}
	p.sched, err = core.NewScheduler(rt, opts.Workers)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Scheduler exposes the underlying scheduler (tests drive traffic
// through it directly when the pump is not running).
func (p *Plane) Scheduler() *core.Scheduler { return p.sched }

// SharingStats snapshots the cross-tenant classifier sharing table.
func (p *Plane) SharingStats() classifier.InternStats { return p.table.Stats() }

// validTenantID enforces the namespace rules: the ID becomes an
// element-name prefix (combine forbids '/', '.', and whitespace) and a
// device-key prefix (':' is our separator), and must survive a URL
// path segment unescaped.
func validTenantID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("mgmt: bad tenant id %q", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("mgmt: bad tenant id %q (want letters, digits, '_', '-')", id)
		}
	}
	return nil
}

// deviceClasses are the element classes whose first config argument
// names a device bound from the environment.
var deviceClasses = map[string]bool{
	"PollDevice": true,
	"FromDevice": true,
	"ToDevice":   true,
}

func isDeviceClass(class string) bool {
	if deviceClasses[class] {
		return true
	}
	if i := strings.LastIndex(class, "_dv"); i > 0 {
		if _, err := strconv.Atoi(class[i+3:]); err == nil {
			return deviceClasses[class[:i]]
		}
	}
	return false
}

// parsedConfig parses and optimizes one configuration text, keyed by
// its hash: a config the plane has seen before — the same tenant
// re-swapped, or a different tenant running the identical ruleset —
// costs one map lookup instead of a parse, a fusion pass, and a
// diagram build. Unless NoShare, the graph's fused classifiers are
// interned in the plane-wide table so equal diagrams are shared
// tenant-to-tenant. Callers hold p.mu.
func (p *Plane) parsedConfig(text string) (*cachedConfig, error) {
	h := sha256.Sum256([]byte(text))
	if c, ok := p.cache[h]; ok {
		p.stats.cacheHits++
		return c, nil
	}
	p.stats.cacheMisses++
	g, err := lang.ParseRouter(text, "tenant.click")
	if err != nil {
		return nil, err
	}
	c := &cachedConfig{graph: g}
	if !p.opts.NoShare {
		if err := opt.Fuse(g, p.reg); err != nil {
			return nil, err
		}
		c.shared, err = opt.ShareFusedPrograms(g, p.reg, p.table)
		if err != nil {
			return nil, err
		}
	}
	p.cache[h] = c
	return c, nil
}

// admit validates one tenant configuration against its limits and
// rewrites every device reference to the tenant-scoped "tenant:dev"
// form so two tenants' "eth0" never collide in the router environment.
// The parsed+optimized base graph comes from the config cache; the
// device rewrite happens on a per-tenant clone. Callers hold p.mu.
func (p *Plane) admit(id, text string, lim Limits) (*tenant, error) {
	base, err := p.parsedConfig(text)
	if err != nil {
		return nil, fmt.Errorf("mgmt: tenant %s: %w", id, err)
	}
	g := base.graph.Clone()
	lim = lim.withDefaults()
	live := g.LiveIndices()
	if len(live) > lim.MaxElements {
		return nil, fmt.Errorf("mgmt: tenant %s: %d elements exceeds limit %d", id, len(live), lim.MaxElements)
	}
	queueBudget := 0
	var devices []string
	seenDev := map[string]bool{}
	for _, i := range live {
		e := g.Element(i)
		if e.Class == "Queue" {
			cap := elements.DefaultQueueCapacity
			args := lang.SplitConfig(e.Config)
			if len(args) >= 1 && strings.TrimSpace(args[0]) != "" {
				n, err := strconv.Atoi(strings.TrimSpace(args[0]))
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("mgmt: tenant %s: bad Queue capacity %q", id, args[0])
				}
				cap = n
			}
			queueBudget += cap
		}
		if !isDeviceClass(e.Class) {
			continue
		}
		args := lang.SplitConfig(e.Config)
		if len(args) == 0 || strings.TrimSpace(args[0]) == "" {
			continue
		}
		dev := strings.TrimSpace(args[0])
		args[0] = id + ":" + dev
		e.Config = strings.Join(args, ", ")
		if !seenDev[dev] {
			seenDev[dev] = true
			devices = append(devices, dev)
		}
	}
	if queueBudget > lim.MaxQueueCapacity {
		return nil, fmt.Errorf("mgmt: tenant %s: queue capacity %d exceeds budget %d", id, queueBudget, lim.MaxQueueCapacity)
	}
	return &tenant{id: id, graph: g, text: text, limits: lim, devices: devices, shared: base.shared}, nil
}

// sortedIDs returns the admitted tenant IDs in sorted order — the
// canonical combine input order, stable across any operation history.
// Callers hold p.mu.
func (p *Plane) sortedIDs() []string {
	ids := make([]string, 0, len(p.tenants))
	for id := range p.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// combinedGraph builds the canonical combined configuration graph of
// the current fleet: tenants in sorted-ID order regardless of the
// create/swap/delete history that produced them, so unparses and
// archive round trips are byte-identical whenever the tenant set is
// equal. Callers hold p.mu.
func (p *Plane) combinedGraph() (*graph.Router, error) {
	ids := p.sortedIDs()
	inputs := make([]opt.RouterInput, 0, len(ids))
	for _, id := range ids {
		inputs = append(inputs, opt.RouterInput{Name: id, Config: p.tenants[id].graph})
	}
	return opt.Combine(inputs, nil)
}

// CombinedGraph exports the canonical combined configuration graph
// (see combinedGraph).
func (p *Plane) CombinedGraph() (*graph.Router, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.combinedGraph()
}

// buildCombined assembles every admitted tenant into one router via
// combine with zero links — pure namespacing, the §7.2 machinery run
// at fleet scale. Callers hold p.mu (or are in NewPlane).
func (p *Plane) buildCombined() (*core.Router, error) {
	g, err := p.combinedGraph()
	if err != nil {
		return nil, err
	}
	env := make(map[string]interface{}, len(p.devs))
	for k, v := range p.devs {
		env[k] = v
	}
	return core.Build(g, p.reg, core.BuildOptions{Burst: p.opts.Burst, Env: env})
}

// buildSub assembles one tenant's subrouter: its graph alone through
// the same combine pass (for the name prefix) and the same Build path,
// with only its own devices in the environment. This is the O(tenant)
// unit of work every incremental operation is built from.
func (p *Plane) buildSub(t *tenant) (*core.Router, error) {
	g, err := opt.Combine([]opt.RouterInput{{Name: t.id, Config: t.graph}}, nil)
	if err != nil {
		return nil, err
	}
	env := make(map[string]interface{}, len(t.devices))
	for _, dev := range t.devices {
		key := "device:" + t.id + ":" + dev
		if obj, ok := p.devs[key]; ok {
			env[key] = obj
		}
	}
	return core.Build(g, p.reg, core.BuildOptions{Burst: p.opts.Burst, Env: env})
}

// install rebuilds the combined router and hot-swaps it in at a
// quiescent point — the full O(fleet) path, used by FullRebuild mode
// and RebuildFull. Unchanged tenants' elements keep their state: the
// transplant matches by (prefixed) name and Go type, and prefixes are
// stable. Callers hold p.mu.
func (p *Plane) install() error {
	next, err := p.buildCombined()
	if err != nil {
		return err
	}
	var swapErr error
	p.sched.SyncDo(func() { swapErr = p.sched.Hotswap(next) })
	return swapErr
}

// RebuildFull rebuilds the whole fleet from scratch and installs it
// through a full hot-swap — the O(fleet) baseline the incremental path
// replaces. The mgmtscale benchmark calls it to measure both costs in
// the same process; it is also the recovery path if an operator wants
// a known-clean rebuild. Note that a full rebuild collapses per-tenant
// guard domains into the new router's single guard set until tenants
// are next swapped individually.
func (p *Plane) RebuildFull() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.install()
}

// provisionDevices binds a tenant's devices into the environment map.
// Callers hold p.mu.
func (p *Plane) provisionDevices(t *tenant) {
	for _, dev := range t.devices {
		scoped := t.id + ":" + dev
		var obj interface{}
		if p.opts.Devices != nil {
			obj = p.opts.Devices(t.id, dev)
		}
		if obj == nil {
			obj = &idleDevice{name: scoped}
		}
		p.devs["device:"+scoped] = obj
	}
}

func (p *Plane) dropDevices(t *tenant) {
	for _, dev := range t.devices {
		delete(p.devs, "device:"+t.id+":"+dev)
	}
}

// closeRemoved releases external resources held by elements removed
// from the live router (trace files and the like). Swapped-away
// elements are not closed — their replacements took over by state
// transplant, matching full hot-swap semantics — only deleted
// tenants' are.
func closeRemoved(removed []core.Element) {
	for _, e := range removed {
		if c, ok := e.(interface{ Close() error }); ok {
			c.Close()
		}
	}
}

// Create admits a new tenant and installs it. Zero-valued limits take
// the plane defaults. On the incremental path only the new tenant's
// subgraph is parsed (or fetched from the config cache), built, and
// spliced into the running router at a quiescent point; every other
// tenant's elements are untouched.
func (p *Plane) Create(id, configText string, lim Limits) error {
	start := time.Now()
	if err := validTenantID(id); err != nil {
		return err
	}
	if lim == (Limits{}) {
		lim = p.opts.Limits
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.tenants[id]; exists {
		return fmt.Errorf("mgmt: tenant %q already exists", id)
	}
	t, err := p.admit(id, configText, lim)
	if err != nil {
		return err
	}
	p.tenants[id] = t
	p.provisionDevices(t)
	if p.opts.FullRebuild {
		if err := p.install(); err != nil {
			// Roll back: the failed configuration must not strand the
			// other tenants.
			delete(p.tenants, id)
			p.dropDevices(t)
			return err
		}
	} else {
		sub, err := p.buildSub(t)
		if err == nil {
			var serr error
			p.sched.SyncDo(func() { serr = p.sched.SpliceTenant(sub) })
			err = serr
		}
		if err != nil {
			delete(p.tenants, id)
			p.dropDevices(t)
			return err
		}
	}
	p.table.Retain(t.shared)
	t.createNS = time.Since(start).Nanoseconds()
	p.stats.create.record(time.Since(start))
	return nil
}

// Swap replaces one tenant's configuration through a zero-loss
// hot-swap: the tenant's same-name, same-type elements keep their
// queue contents and counters, and every other tenant is untouched.
// On the incremental path only the tenant's subgraph is rebuilt and
// exchanged (Scheduler.SwapTenant) at a quiescent point.
func (p *Plane) Swap(id, configText string) error {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	old, ok := p.tenants[id]
	if !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	t, err := p.admit(id, configText, old.limits)
	if err != nil {
		return err
	}
	t.swaps = old.swaps + 1
	t.createNS = old.createNS
	p.tenants[id] = t
	p.dropDevices(old)
	p.provisionDevices(t)
	if p.opts.FullRebuild {
		if err := p.install(); err != nil {
			p.tenants[id] = old
			p.dropDevices(t)
			p.provisionDevices(old)
			return err
		}
	} else {
		sub, err := p.buildSub(t)
		if err == nil {
			var serr error
			p.sched.SyncDo(func() { _, serr = p.sched.SwapTenant(tenantPrefix(id), sub) })
			err = serr
		}
		if err != nil {
			p.tenants[id] = old
			p.dropDevices(t)
			p.provisionDevices(old)
			return err
		}
	}
	p.table.Retain(t.shared)
	p.table.Release(old.shared)
	t.swapNS = time.Since(start).Nanoseconds()
	p.stats.swap.record(time.Since(start))
	return nil
}

// Delete removes a tenant. Other tenants keep their state across the
// installation; on the incremental path their elements are not even
// rebuilt — the tenant's subgraph is unlinked from the running router
// at a quiescent point and its elements closed.
func (p *Plane) Delete(id string) error {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[id]
	if !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	delete(p.tenants, id)
	p.dropDevices(t)
	if p.opts.FullRebuild {
		if err := p.install(); err != nil {
			// Reinstate: a failed rebuild must not leave the plane running
			// a router that still contains the tenant while the control
			// plane thinks it is gone.
			p.tenants[id] = t
			p.provisionDevices(t)
			return err
		}
	} else {
		var removed []core.Element
		p.sched.SyncDo(func() { removed = p.sched.RemoveTenant(tenantPrefix(id)) })
		closeRemoved(removed)
	}
	p.table.Release(t.shared)
	p.stats.delete.record(time.Since(start))
	return nil
}

// Tenants lists the admitted tenants, sorted by ID.
func (p *Plane) Tenants() []TenantInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantInfo, 0, len(p.tenants))
	for id, t := range p.tenants {
		out = append(out, TenantInfo{
			ID:       id,
			Elements: len(t.graph.LiveIndices()),
			Swaps:    t.swaps,
			Limits:   t.limits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// tenantPrefix is the element-name prefix combine gives tenant id.
func tenantPrefix(id string) string { return id + "/" }

// path composes the combined-router handler path for a tenant-relative
// element name.
func (p *Plane) path(id, element, handler string) string {
	return core.HandlerPath(tenantPrefix(id)+element, handler)
}

// checkTenant returns an error if id is not admitted.
func (p *Plane) checkTenant(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tenants[id]; !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	return nil
}

// ReadHandler reads a tenant's element handler at a quiescent point.
// element is tenant-relative ("q0", not "t1/q0").
func (p *Plane) ReadHandler(id, element, handler string) (string, error) {
	if err := p.checkTenant(id); err != nil {
		return "", err
	}
	return p.sched.ReadHandler(p.path(id, element, handler))
}

// WriteHandler writes a tenant's element handler at a quiescent point.
// Queue "capacity" writes are checked against the tenant's
// MaxQueueCapacity budget atomically with the write itself.
func (p *Plane) WriteHandler(id, element, handler, value string) error {
	p.mu.Lock()
	t, ok := p.tenants[id]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	full := p.path(id, element, handler)
	if handler != "capacity" {
		return p.sched.WriteHandler(full, value)
	}
	newCap, err := strconv.Atoi(strings.TrimSpace(value))
	if err != nil || newCap <= 0 {
		return fmt.Errorf("mgmt: bad capacity %q", value)
	}
	var werr error
	p.sched.SyncDo(func() {
		rt := p.sched.Router()
		total := 0
		target := tenantPrefix(id) + element
		for _, i := range rt.Graph.LiveIndices() {
			ge := rt.Graph.Element(i)
			if ge.Class != "Queue" || !strings.HasPrefix(ge.Name, tenantPrefix(id)) || ge.Name == target {
				continue
			}
			if v, err := rt.ReadHandler(core.HandlerPath(ge.Name, "capacity")); err == nil {
				if n, err := strconv.Atoi(v); err == nil {
					total += n
				}
			}
		}
		if total+newCap > t.limits.MaxQueueCapacity {
			werr = fmt.Errorf("mgmt: tenant %s: capacity %d would exceed budget %d (others hold %d)",
				id, newCap, t.limits.MaxQueueCapacity, total)
			return
		}
		werr = rt.WriteHandler(full, value)
	})
	return werr
}

// ElementInfo is one element of a tenant's handler tree.
type ElementInfo struct {
	Name     string   `json:"name"`
	Class    string   `json:"class"`
	Handlers []string `json:"handlers"`
}

// Elements returns a tenant's handler tree: its elements (names
// tenant-relative) and the handlers each exports.
func (p *Plane) Elements(id string) ([]ElementInfo, error) {
	if err := p.checkTenant(id); err != nil {
		return nil, err
	}
	var out []ElementInfo
	var lerr error
	p.sched.SyncDo(func() {
		rt := p.sched.Router()
		pre := tenantPrefix(id)
		for _, i := range rt.Graph.LiveIndices() {
			ge := rt.Graph.Element(i)
			if !strings.HasPrefix(ge.Name, pre) {
				continue
			}
			names, err := rt.HandlerNames(ge.Name)
			if err != nil {
				lerr = err
				return
			}
			out = append(out, ElementInfo{
				Name:     strings.TrimPrefix(ge.Name, pre),
				Class:    ge.Class,
				Handlers: names,
			})
		}
	})
	return out, lerr
}

// TenantReport snapshots one tenant's telemetry at a quiescent point.
func (p *Plane) TenantReport(id string) (*Report, error) {
	p.mu.Lock()
	t, ok := p.tenants[id]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("mgmt: no tenant %q", id)
	}
	rep := &Report{ID: id, Swaps: t.swaps, CreateNS: t.createNS, SwapNS: t.swapNS}
	p.mu.Unlock()
	p.sched.SyncDo(func() {
		pre := tenantPrefix(id)
		for _, er := range p.sched.Router().StatsReport() {
			if !strings.HasPrefix(er.Name, pre) {
				continue
			}
			er.Name = strings.TrimPrefix(er.Name, pre)
			rep.Elements = append(rep.Elements, er)
		}
	})
	rep.Totals = core.Totals(rep.Elements)
	return rep, nil
}

// Report snapshots the plane-wide control surface: tenant and element
// counts, per-operation latency counters, config-cache effectiveness,
// and the classifier-sharing table.
func (p *Plane) Report() *PlaneReport {
	p.mu.Lock()
	rep := &PlaneReport{
		Tenants:           len(p.tenants),
		Incremental:       !p.opts.FullRebuild,
		Create:            p.stats.create,
		Swap:              p.stats.swap,
		Delete:            p.stats.delete,
		ConfigCacheHits:   p.stats.cacheHits,
		ConfigCacheMisses: p.stats.cacheMisses,
	}
	for _, t := range p.tenants {
		rep.Elements += len(t.graph.LiveIndices())
	}
	p.mu.Unlock()
	rep.Sharing = p.table.Stats()
	return rep
}

// Start launches the dataplane pump: a goroutine driving the combined
// router until each burst of work drains, sleeping briefly when idle.
// Control operations interleave at quiescent points automatically.
func (p *Plane) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.pump(p.stop, p.done)
}

// Stop halts the dataplane pump, waiting for it to exit.
func (p *Plane) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	stop, done := p.stop, p.done
	p.mu.Unlock()
	close(stop)
	<-done
}

func (p *Plane) pump(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if p.sched.RunUntilIdle(4096) == 0 {
			// Idle: no source had work. Sleep briefly rather than
			// spin; control ops still run directly via SyncDo.
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// idleDevice satisfies elements.Device with an empty RX ring and a
// bottomless TX ring — the default binding when no DeviceProvider is
// configured.
type idleDevice struct{ name string }

func (d *idleDevice) DeviceName() string { return d.name }

func (d *idleDevice) RxDequeue() *packet.Packet { return nil }

func (d *idleDevice) TxEnqueue(p *packet.Packet) bool {
	p.Kill()
	return true
}

func (d *idleDevice) TxRoom() bool { return true }

func (d *idleDevice) TxClean() int { return 0 }
