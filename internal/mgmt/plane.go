// Package mgmt hosts many tenant router configurations inside one
// process — the XORP-style management shape for the combine machinery:
// every tenant's elements live in a single combined router under a
// "tenant/" name prefix, the read/write handler tree is the uniform
// control surface, and an HTTP/JSON API (http.go) exposes it. Tenants
// are created, hot-swapped, and deleted independently: each change
// rebuilds the combined configuration and installs it through the
// scheduler's zero-loss hot-swap, so unchanged tenants keep their
// queue contents, counters, and table state by name-based transplant.
//
// The plane charges zero model cycles: it never attaches the simulated
// CPU, every control operation runs through Scheduler.SyncDo at
// dataplane-quiescent points, and nothing here is on the packet path.
package mgmt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

// Limits bound one tenant's resource footprint. Zero fields take the
// defaults below.
type Limits struct {
	// MaxElements caps the tenant's live element count at admission.
	MaxElements int
	// MaxQueueCapacity caps the sum of the tenant's Queue capacities —
	// its packet-buffer budget. Enforced at admission and again on
	// every runtime "capacity" handler write.
	MaxQueueCapacity int
}

// Default per-tenant limits.
const (
	DefaultMaxElements      = 512
	DefaultMaxQueueCapacity = 1 << 16
)

func (l Limits) withDefaults() Limits {
	if l.MaxElements <= 0 {
		l.MaxElements = DefaultMaxElements
	}
	if l.MaxQueueCapacity <= 0 {
		l.MaxQueueCapacity = DefaultMaxQueueCapacity
	}
	return l
}

// DeviceProvider supplies the device object bound for a tenant's named
// device (anything implementing elements.Device). Returning nil falls
// back to an idle in-memory device that receives nothing and accepts
// every transmit.
type DeviceProvider func(tenant, device string) interface{}

// Options configure a Plane.
type Options struct {
	// Registry resolves element classes; nil uses the builtin registry.
	Registry *core.Registry
	// Workers is the dataplane worker count (default 1). With more
	// than one the combined router runs on the free-running epoch
	// scheduler; control operations rendezvous through SyncDo.
	Workers int
	// Burst is the router-wide batch size (0 or 1 = scalar).
	Burst int
	// Devices provides tenant device bindings; nil means every device
	// is an idle in-memory one.
	Devices DeviceProvider
	// Limits are the default per-tenant limits.
	Limits Limits
}

// TenantInfo is one tenant's control-plane view.
type TenantInfo struct {
	ID       string `json:"id"`
	Elements int    `json:"elements"`
	Swaps    int    `json:"swaps"`
	Limits   Limits `json:"limits"`
}

// Report is one tenant's telemetry snapshot, taken at a quiescent
// point so the counters are mutually consistent.
type Report struct {
	ID       string                    `json:"id"`
	Elements []core.ElementStatsReport `json:"elements"`
	Totals   core.StatsTotals          `json:"totals"`
}

// tenant is one admitted configuration.
type tenant struct {
	id      string
	graph   *graph.Router // device-rewritten, pre-prefix
	text    string        // original config text
	limits  Limits
	devices []string // original (unprefixed) device names
	swaps   int
}

// Plane hosts the tenants. All control-plane methods are safe for
// concurrent use; dataplane interaction happens only through the
// scheduler's quiescent points.
type Plane struct {
	opts Options
	reg  *core.Registry

	mu      sync.Mutex
	tenants map[string]*tenant
	order   []string // admission order, the combine input order
	devs    map[string]interface{}
	sched   *core.Scheduler
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// NewPlane builds an empty plane with a running (but idle) combined
// router.
func NewPlane(opts Options) (*Plane, error) {
	if opts.Registry == nil {
		opts.Registry = elements.NewRegistry()
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	opts.Limits = opts.Limits.withDefaults()
	p := &Plane{
		opts:    opts,
		reg:     opts.Registry,
		tenants: map[string]*tenant{},
		devs:    map[string]interface{}{},
	}
	rt, err := p.buildCombined()
	if err != nil {
		return nil, err
	}
	p.sched, err = core.NewScheduler(rt, opts.Workers)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Scheduler exposes the underlying scheduler (tests drive traffic
// through it directly when the pump is not running).
func (p *Plane) Scheduler() *core.Scheduler { return p.sched }

// validTenantID enforces the namespace rules: the ID becomes an
// element-name prefix (combine forbids '/', '.', and whitespace) and a
// device-key prefix (':' is our separator), and must survive a URL
// path segment unescaped.
func validTenantID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("mgmt: bad tenant id %q", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("mgmt: bad tenant id %q (want letters, digits, '_', '-')", id)
		}
	}
	return nil
}

// deviceClasses are the element classes whose first config argument
// names a device bound from the environment.
var deviceClasses = map[string]bool{
	"PollDevice": true,
	"FromDevice": true,
	"ToDevice":   true,
}

func isDeviceClass(class string) bool {
	if deviceClasses[class] {
		return true
	}
	if i := strings.LastIndex(class, "_dv"); i > 0 {
		if _, err := strconv.Atoi(class[i+3:]); err == nil {
			return deviceClasses[class[:i]]
		}
	}
	return false
}

// admit parses and validates one tenant configuration: the graph is
// checked against the limits, and every device reference is rewritten
// to the tenant-scoped "tenant:dev" form so two tenants' "eth0" never
// collide in the router environment.
func (p *Plane) admit(id, text string, lim Limits) (*tenant, error) {
	g, err := lang.ParseRouter(text, id+".click")
	if err != nil {
		return nil, fmt.Errorf("mgmt: tenant %s: %w", id, err)
	}
	lim = lim.withDefaults()
	live := g.LiveIndices()
	if len(live) > lim.MaxElements {
		return nil, fmt.Errorf("mgmt: tenant %s: %d elements exceeds limit %d", id, len(live), lim.MaxElements)
	}
	queueBudget := 0
	var devices []string
	seenDev := map[string]bool{}
	for _, i := range live {
		e := g.Element(i)
		if e.Class == "Queue" {
			cap := elements.DefaultQueueCapacity
			args := lang.SplitConfig(e.Config)
			if len(args) >= 1 && strings.TrimSpace(args[0]) != "" {
				n, err := strconv.Atoi(strings.TrimSpace(args[0]))
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("mgmt: tenant %s: bad Queue capacity %q", id, args[0])
				}
				cap = n
			}
			queueBudget += cap
		}
		if !isDeviceClass(e.Class) {
			continue
		}
		args := lang.SplitConfig(e.Config)
		if len(args) == 0 || strings.TrimSpace(args[0]) == "" {
			continue
		}
		dev := strings.TrimSpace(args[0])
		args[0] = id + ":" + dev
		e.Config = strings.Join(args, ", ")
		if !seenDev[dev] {
			seenDev[dev] = true
			devices = append(devices, dev)
		}
	}
	if queueBudget > lim.MaxQueueCapacity {
		return nil, fmt.Errorf("mgmt: tenant %s: queue capacity %d exceeds budget %d", id, queueBudget, lim.MaxQueueCapacity)
	}
	return &tenant{id: id, graph: g, text: text, limits: lim, devices: devices}, nil
}

// buildCombined assembles every admitted tenant into one router via
// combine with zero links — pure namespacing, the §7.2 machinery run
// at fleet scale. Callers hold p.mu (or are in NewPlane).
func (p *Plane) buildCombined() (*core.Router, error) {
	inputs := make([]opt.RouterInput, 0, len(p.order))
	for _, id := range p.order {
		inputs = append(inputs, opt.RouterInput{Name: id, Config: p.tenants[id].graph})
	}
	g, err := opt.Combine(inputs, nil)
	if err != nil {
		return nil, err
	}
	env := make(map[string]interface{}, len(p.devs))
	for k, v := range p.devs {
		env[k] = v
	}
	return core.Build(g, p.reg, core.BuildOptions{Burst: p.opts.Burst, Env: env})
}

// install rebuilds the combined router and hot-swaps it in at a
// quiescent point. Unchanged tenants' elements keep their state: the
// transplant matches by (prefixed) name and Go type, and prefixes are
// stable. Callers hold p.mu.
func (p *Plane) install() error {
	next, err := p.buildCombined()
	if err != nil {
		return err
	}
	var swapErr error
	p.sched.SyncDo(func() { swapErr = p.sched.Hotswap(next) })
	return swapErr
}

// provisionDevices binds a tenant's devices into the environment map.
// Callers hold p.mu.
func (p *Plane) provisionDevices(t *tenant) {
	for _, dev := range t.devices {
		scoped := t.id + ":" + dev
		var obj interface{}
		if p.opts.Devices != nil {
			obj = p.opts.Devices(t.id, dev)
		}
		if obj == nil {
			obj = &idleDevice{name: scoped}
		}
		p.devs["device:"+scoped] = obj
	}
}

func (p *Plane) dropDevices(t *tenant) {
	for _, dev := range t.devices {
		delete(p.devs, "device:"+t.id+":"+dev)
	}
}

// Create admits a new tenant and installs it. Zero-valued limits take
// the plane defaults.
func (p *Plane) Create(id, configText string, lim Limits) error {
	if err := validTenantID(id); err != nil {
		return err
	}
	if lim == (Limits{}) {
		lim = p.opts.Limits
	}
	t, err := p.admit(id, configText, lim)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.tenants[id]; exists {
		return fmt.Errorf("mgmt: tenant %q already exists", id)
	}
	p.tenants[id] = t
	p.order = append(p.order, id)
	p.provisionDevices(t)
	if err := p.install(); err != nil {
		// Roll back: the failed configuration must not strand the
		// other tenants.
		delete(p.tenants, id)
		p.order = p.order[:len(p.order)-1]
		p.dropDevices(t)
		return err
	}
	return nil
}

// Swap replaces one tenant's configuration through a zero-loss
// hot-swap: the tenant's same-name, same-type elements keep their
// queue contents and counters, and every other tenant is untouched.
func (p *Plane) Swap(id, configText string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	old, ok := p.tenants[id]
	if !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	t, err := p.admit(id, configText, old.limits)
	if err != nil {
		return err
	}
	t.swaps = old.swaps + 1
	p.tenants[id] = t
	p.dropDevices(old)
	p.provisionDevices(t)
	if err := p.install(); err != nil {
		p.tenants[id] = old
		p.dropDevices(t)
		p.provisionDevices(old)
		return err
	}
	return nil
}

// Delete removes a tenant. Other tenants keep their state across the
// installation.
func (p *Plane) Delete(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[id]
	if !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	delete(p.tenants, id)
	for i, o := range p.order {
		if o == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.dropDevices(t)
	if err := p.install(); err != nil {
		// Reinstate: a failed rebuild must not leave the plane running
		// a router that still contains the tenant while the control
		// plane thinks it is gone.
		p.tenants[id] = t
		p.order = append(p.order, id)
		p.provisionDevices(t)
		return err
	}
	return nil
}

// Tenants lists the admitted tenants, sorted by ID.
func (p *Plane) Tenants() []TenantInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantInfo, 0, len(p.tenants))
	for id, t := range p.tenants {
		out = append(out, TenantInfo{
			ID:       id,
			Elements: len(t.graph.LiveIndices()),
			Swaps:    t.swaps,
			Limits:   t.limits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// tenantPrefix is the element-name prefix combine gives tenant id.
func tenantPrefix(id string) string { return id + "/" }

// path composes the combined-router handler path for a tenant-relative
// element name.
func (p *Plane) path(id, element, handler string) string {
	return core.HandlerPath(tenantPrefix(id)+element, handler)
}

// checkTenant returns an error if id is not admitted.
func (p *Plane) checkTenant(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.tenants[id]; !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	return nil
}

// ReadHandler reads a tenant's element handler at a quiescent point.
// element is tenant-relative ("q0", not "t1/q0").
func (p *Plane) ReadHandler(id, element, handler string) (string, error) {
	if err := p.checkTenant(id); err != nil {
		return "", err
	}
	return p.sched.ReadHandler(p.path(id, element, handler))
}

// WriteHandler writes a tenant's element handler at a quiescent point.
// Queue "capacity" writes are checked against the tenant's
// MaxQueueCapacity budget atomically with the write itself.
func (p *Plane) WriteHandler(id, element, handler, value string) error {
	p.mu.Lock()
	t, ok := p.tenants[id]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("mgmt: no tenant %q", id)
	}
	full := p.path(id, element, handler)
	if handler != "capacity" {
		return p.sched.WriteHandler(full, value)
	}
	newCap, err := strconv.Atoi(strings.TrimSpace(value))
	if err != nil || newCap <= 0 {
		return fmt.Errorf("mgmt: bad capacity %q", value)
	}
	var werr error
	p.sched.SyncDo(func() {
		rt := p.sched.Router()
		total := 0
		target := tenantPrefix(id) + element
		for _, i := range rt.Graph.LiveIndices() {
			ge := rt.Graph.Element(i)
			if ge.Class != "Queue" || !strings.HasPrefix(ge.Name, tenantPrefix(id)) || ge.Name == target {
				continue
			}
			if v, err := rt.ReadHandler(core.HandlerPath(ge.Name, "capacity")); err == nil {
				if n, err := strconv.Atoi(v); err == nil {
					total += n
				}
			}
		}
		if total+newCap > t.limits.MaxQueueCapacity {
			werr = fmt.Errorf("mgmt: tenant %s: capacity %d would exceed budget %d (others hold %d)",
				id, newCap, t.limits.MaxQueueCapacity, total)
			return
		}
		werr = rt.WriteHandler(full, value)
	})
	return werr
}

// ElementInfo is one element of a tenant's handler tree.
type ElementInfo struct {
	Name     string   `json:"name"`
	Class    string   `json:"class"`
	Handlers []string `json:"handlers"`
}

// Elements returns a tenant's handler tree: its elements (names
// tenant-relative) and the handlers each exports.
func (p *Plane) Elements(id string) ([]ElementInfo, error) {
	if err := p.checkTenant(id); err != nil {
		return nil, err
	}
	var out []ElementInfo
	var lerr error
	p.sched.SyncDo(func() {
		rt := p.sched.Router()
		pre := tenantPrefix(id)
		for _, i := range rt.Graph.LiveIndices() {
			ge := rt.Graph.Element(i)
			if !strings.HasPrefix(ge.Name, pre) {
				continue
			}
			names, err := rt.HandlerNames(ge.Name)
			if err != nil {
				lerr = err
				return
			}
			out = append(out, ElementInfo{
				Name:     strings.TrimPrefix(ge.Name, pre),
				Class:    ge.Class,
				Handlers: names,
			})
		}
	})
	return out, lerr
}

// TenantReport snapshots one tenant's telemetry at a quiescent point.
func (p *Plane) TenantReport(id string) (*Report, error) {
	if err := p.checkTenant(id); err != nil {
		return nil, err
	}
	rep := &Report{ID: id}
	p.sched.SyncDo(func() {
		pre := tenantPrefix(id)
		for _, er := range p.sched.Router().StatsReport() {
			if !strings.HasPrefix(er.Name, pre) {
				continue
			}
			er.Name = strings.TrimPrefix(er.Name, pre)
			rep.Elements = append(rep.Elements, er)
		}
	})
	rep.Totals = core.Totals(rep.Elements)
	return rep, nil
}

// Start launches the dataplane pump: a goroutine driving the combined
// router until each burst of work drains, sleeping briefly when idle.
// Control operations interleave at quiescent points automatically.
func (p *Plane) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.pump(p.stop, p.done)
}

// Stop halts the dataplane pump, waiting for it to exit.
func (p *Plane) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	stop, done := p.stop, p.done
	p.mu.Unlock()
	close(stop)
	<-done
}

func (p *Plane) pump(stop, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if p.sched.RunUntilIdle(4096) == 0 {
			// Idle: no source had work. Sleep briefly rather than
			// spin; control ops still run directly via SyncDo.
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
}

// idleDevice satisfies elements.Device with an empty RX ring and a
// bottomless TX ring — the default binding when no DeviceProvider is
// configured.
type idleDevice struct{ name string }

func (d *idleDevice) DeviceName() string { return d.name }

func (d *idleDevice) RxDequeue() *packet.Packet { return nil }

func (d *idleDevice) TxEnqueue(p *packet.Packet) bool {
	p.Kill()
	return true
}

func (d *idleDevice) TxRoom() bool { return true }

func (d *idleDevice) TxClean() int { return 0 }
