package mgmt

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tenantConfig is a self-driving tenant: a bounded source feeding a
// queue drained into a counter sink, so traffic flows with no devices
// and conservation (src out == delivered + queue drops) is checkable
// per tenant.
func tenantConfig(limit, qcap int) string {
	return fmt.Sprintf(
		"src :: InfiniteSource(%d) -> q :: Queue(%d) -> u :: Unqueue -> d :: Discard;",
		limit, qcap)
}

func mustCreate(t *testing.T, p *Plane, id, cfg string) {
	t.Helper()
	if err := p.Create(id, cfg, Limits{}); err != nil {
		t.Fatalf("create %s: %v", id, err)
	}
}

func readInt(t *testing.T, p *Plane, id, elem, h string) int64 {
	t.Helper()
	v, err := p.ReadHandler(id, elem, h)
	if err != nil {
		t.Fatalf("read %s %s.%s: %v", id, elem, h, err)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("read %s %s.%s = %q", id, elem, h, v)
	}
	return n
}

// drain runs the plane's dataplane until every tenant source is
// exhausted.
func drain(p *Plane) {
	for p.Scheduler().RunUntilIdle(1<<20) > 0 {
	}
}

func TestTenantLifecycle(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Create two tenants and run them dry.
	mustCreate(t, p, "t1", tenantConfig(5000, 100))
	mustCreate(t, p, "t2", tenantConfig(3000, 100))
	drain(p)
	for id, want := range map[string]int64{"t1": 5000, "t2": 3000} {
		emitted := readInt(t, p, id, "src", "packets_out")
		delivered := readInt(t, p, id, "d", "packets_in")
		drops := readInt(t, p, id, "q", "drops")
		if emitted != want {
			t.Errorf("%s emitted %d, want %d", id, emitted, want)
		}
		if delivered+drops != emitted {
			t.Errorf("%s: delivered %d + drops %d != emitted %d", id, delivered, drops, emitted)
		}
	}

	// Hot-swap t1 to a quiet config with a different queue capacity:
	// its counters must transplant (zero loss) and t2 is untouched.
	t2Before := readInt(t, p, "t2", "d", "packets_in")
	if err := p.Swap("t1", tenantConfig(0, 64)); err != nil {
		t.Fatalf("swap t1: %v", err)
	}
	if got := readInt(t, p, "t1", "d", "packets_in"); got != 5000-readInt(t, p, "t1", "q", "drops") {
		t.Errorf("t1 delivered %d after swap, counters not transplanted", got)
	}
	if v, _ := p.ReadHandler("t1", "q", "capacity"); v != "64" {
		t.Errorf("t1 q.capacity = %q after swap, want 64", v)
	}
	if got := readInt(t, p, "t2", "d", "packets_in"); got != t2Before {
		t.Errorf("t2 delivered moved %d -> %d across t1's swap", t2Before, got)
	}
	info := p.Tenants()
	if len(info) != 2 || info[0].ID != "t1" || info[0].Swaps != 1 || info[1].Swaps != 0 {
		t.Errorf("tenants = %+v", info)
	}

	// Delete t1; t2's state survives the reinstall.
	if err := p.Delete("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadHandler("t1", "d", "packets_in"); err == nil {
		t.Error("t1 still readable after delete")
	}
	if got := readInt(t, p, "t2", "d", "packets_in"); got != t2Before {
		t.Errorf("t2 delivered moved %d -> %d across t1's delete", t2Before, got)
	}
	if err := p.Delete("t1"); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestTenantAdmissionLimits(t *testing.T) {
	p, err := NewPlane(Options{Limits: Limits{MaxQueueCapacity: 500, MaxElements: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Create("big", tenantConfig(0, 600), Limits{}); err == nil {
		t.Error("over-budget queue admitted")
	}
	var b strings.Builder
	for i := 0; i < 11; i++ {
		fmt.Fprintf(&b, "s%d :: InfiniteSource(0) -> d%d :: Discard;\n", i, i)
	}
	if err := p.Create("many", b.String(), Limits{}); err == nil {
		t.Error("over-budget element count admitted")
	}
	if err := p.Create("bad id!", tenantConfig(0, 10), Limits{}); err == nil {
		t.Error("hostile tenant id admitted")
	}
	if err := p.Create("a/b", tenantConfig(0, 10), Limits{}); err == nil {
		t.Error("tenant id with '/' admitted")
	}

	// Within budget admits, and the runtime capacity budget holds: the
	// write that would blow the budget fails atomically, one within it
	// lands.
	mustCreate(t, p, "ok", tenantConfig(0, 400))
	if err := p.WriteHandler("ok", "q", "capacity", "600"); err == nil {
		t.Error("over-budget capacity write accepted")
	}
	if v, _ := p.ReadHandler("ok", "q", "capacity"); v != "400" {
		t.Errorf("capacity changed to %q by rejected write", v)
	}
	if err := p.WriteHandler("ok", "q", "capacity", "450"); err != nil {
		t.Errorf("in-budget capacity write rejected: %v", err)
	}
	if v, _ := p.ReadHandler("ok", "q", "capacity"); v != "450" {
		t.Errorf("capacity = %q, want 450", v)
	}
}

// TestTenantNamespaceCollisions checks that two tenants using the same
// element and device names stay fully separate.
func TestTenantNamespaceCollisions(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both tenants bind "eth0" — the device rewrite must scope them.
	cfg := "fd :: PollDevice(eth0) -> q :: Queue(10) -> td :: ToDevice(eth0);"
	mustCreate(t, p, "a", cfg)
	mustCreate(t, p, "b", cfg)
	if _, err := p.ReadHandler("a", "q", "length"); err != nil {
		t.Errorf("tenant a: %v", err)
	}
	if _, err := p.ReadHandler("b", "q", "length"); err != nil {
		t.Errorf("tenant b: %v", err)
	}
	// The rewritten config names the scoped device.
	if v, _ := p.ReadHandler("a", "fd", "config"); !strings.Contains(v, "a:eth0") {
		t.Errorf("tenant a device config = %q, want scoped a:eth0", v)
	}
	els, err := p.Elements("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 3 {
		t.Errorf("tenant a has %d elements, want 3: %+v", len(els), els)
	}
	for _, el := range els {
		if strings.Contains(el.Name, "a/") {
			t.Errorf("element name %q not tenant-relative", el.Name)
		}
	}
}

// TestTenantReport checks the per-tenant telemetry snapshot.
func TestTenantReport(t *testing.T) {
	p, err := NewPlane(Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, p, "t1", tenantConfig(1000, 100))
	drain(p)
	rep, err := p.TenantReport("t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Elements) != 4 {
		t.Fatalf("report has %d elements, want 4", len(rep.Elements))
	}
	var srcOut int64
	for _, e := range rep.Elements {
		if e.Name == "src" {
			srcOut = e.PacketsOut
		}
		if strings.Contains(e.Name, "/") {
			t.Errorf("report element %q not tenant-relative", e.Name)
		}
	}
	if srcOut != 1000 {
		t.Errorf("report src.packets_out = %d, want 1000", srcOut)
	}
	if rep.Totals.PacketsOut == 0 {
		t.Error("report totals empty")
	}
	if _, err := p.TenantReport("ghost"); err == nil {
		t.Error("report for unknown tenant succeeded")
	}
}
