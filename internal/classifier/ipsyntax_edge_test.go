package classifier

import (
	"encoding/binary"
	"testing"
)

// edgePacket builds a 40-byte IPv4 packet (header at offset 0, IHL 5)
// with the classification-relevant fields set.
func edgePacket(proto byte, srcPort, dstPort uint16, frag bool, tcpFlags byte) []byte {
	d := make([]byte, 40)
	d[0] = 0x45
	d[9] = proto
	if frag {
		d[6], d[7] = 0x20, 0x05 // MF set, nonzero fragment offset
	}
	copy(d[12:16], []byte{10, 0, 0, 2})
	copy(d[16:20], []byte{10, 0, 1, 2})
	binary.BigEndian.PutUint16(d[20:], srcPort)
	binary.BigEndian.PutUint16(d[22:], dstPort)
	d[33] = tcpFlags
	return d
}

// TestIPSyntaxEdgeCases drives the tcpdump-style front end through the
// constructs fusion leans on: negation, relational port ranges,
// fragment tests, and TCP-flag patterns. Each expression is compiled as
// IPClassifier(expr, -): output 0 means matched.
func TestIPSyntaxEdgeCases(t *testing.T) {
	tcp, udp := byte(6), byte(17)
	cases := []struct {
		expr  string
		pkt   []byte
		match bool
	}{
		// Negated clauses, in both spellings.
		{"not tcp", edgePacket(udp, 1, 2, false, 0), true},
		{"not tcp", edgePacket(tcp, 1, 2, false, 0), false},
		{"!(udp || icmp)", edgePacket(tcp, 1, 2, false, 0), true},
		{"!(udp || icmp)", edgePacket(1, 0, 0, false, 0), false},
		{"udp && not dst port 53", edgePacket(udp, 9, 80, false, 0), true},
		{"udp && not dst port 53", edgePacket(udp, 9, 53, false, 0), false},

		// Relational port ranges: every operator, at its boundary.
		{"tcp && dst port >= 1024", edgePacket(tcp, 9, 1024, false, 0), true},
		{"tcp && dst port >= 1024", edgePacket(tcp, 9, 1023, false, 0), false},
		{"tcp && dst port >= 1024", edgePacket(tcp, 9, 65535, false, 0), true},
		{"udp && src port < 100", edgePacket(udp, 99, 9, false, 0), true},
		{"udp && src port < 100", edgePacket(udp, 100, 9, false, 0), false},
		{"udp && dst port <= 53", edgePacket(udp, 9, 53, false, 0), true},
		{"udp && dst port <= 53", edgePacket(udp, 9, 54, false, 0), false},
		{"tcp && src port > 1000", edgePacket(tcp, 1001, 9, false, 0), true},
		{"tcp && src port > 1000", edgePacket(tcp, 1000, 9, false, 0), false},
		// Undirected ranges match either port.
		{"udp && port >= 5000", edgePacket(udp, 6000, 9, false, 0), true},
		{"udp && port >= 5000", edgePacket(udp, 9, 6000, false, 0), true},
		{"udp && port >= 5000", edgePacket(udp, 9, 9, false, 0), false},

		// Fragments: a transport test must not fire on a fragment, and
		// "ip frag" must select exactly the fragments.
		{"ip frag", edgePacket(udp, 9, 53, true, 0), true},
		{"ip frag", edgePacket(udp, 9, 53, false, 0), false},
		{"udp && dst port 53", edgePacket(udp, 9, 53, true, 0), false},

		// TCP flag patterns.
		{"tcp syn", edgePacket(tcp, 1, 2, false, 0x02), true},
		{"tcp syn", edgePacket(tcp, 1, 2, false, 0x10), false},
		{"tcp syn && not tcp ack", edgePacket(tcp, 1, 2, false, 0x02), true},
		{"tcp syn && not tcp ack", edgePacket(tcp, 1, 2, false, 0x12), false},

		// Overlapping prefixes resolve by specificity of the test, not
		// order (single expression, so plain boolean semantics).
		{"src net 10.0.0.0/8 && not src net 10.0.0.0/24", edgePacket(udp, 1, 2, false, 0), false},
		{"src net 10.0.0.0/8 && not src net 10.1.0.0/16", edgePacket(udp, 1, 2, false, 0), true},
	}
	for _, tc := range cases {
		pr, err := BuildIPClassifierProgram([]string{tc.expr, "-"})
		if err != nil {
			t.Errorf("%q: unexpected compile error: %v", tc.expr, err)
			continue
		}
		pr.Optimize()
		port, ok, _ := pr.Match(tc.pkt)
		got := ok && port == 0
		if got != tc.match {
			t.Errorf("%q on %x: match=%v, want %v\n%s", tc.expr, tc.pkt, got, tc.match, pr)
		}
	}
}

// TestIPSyntaxMalformed: malformed rules must produce an error, never a
// panic, through both the classifier and the filter entry points.
func TestIPSyntaxMalformed(t *testing.T) {
	bad := []string{
		"",
		"port",
		"port >=",
		"port >= notaport",
		"port >= 70000",
		"port > 65535", // empty range
		"port < 0",     // empty range
		"tcp &&",
		"(tcp",
		"tcp)",
		"not",
		"src host",
		"src host 999.1.1.1",
		"dst net 10.0.0.0/33",
		"ip proto banana",
		"tcp flagz",
	}
	for _, expr := range bad {
		if _, err := BuildIPClassifierProgram([]string{expr, "-"}); err == nil {
			t.Errorf("IPClassifier(%q): expected error, got none", expr)
		}
	}
	badRules := [][]string{
		{"frobnicate tcp"},            // unknown action
		{"allow"},                     // missing expression
		{"allow tcp", "deny port >="}, // malformed second rule
	}
	for _, rules := range badRules {
		if _, err := BuildIPFilterProgram(rules); err == nil {
			t.Errorf("IPFilter(%q): expected error, got none", rules)
		}
	}
}
