package classifier

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/packet"
)

// This file parses the tcpdump-like predicate language of IPClassifier
// and IPFilter — the paper's example is "src 10.0.0.2 & tcp src port
// 25". Packets reaching these elements start at the IPv4 header
// (Ethernet header already stripped), so all offsets are relative to
// the IP header.
//
// Supported primitives:
//
//	ip proto <name|number>      tcp | udp | icmp (shorthands allowed)
//	[src|dst] host A            host without src/dst matches either
//	src A / dst A               shorthand for src/dst host
//	[src|dst] net A/len         prefix match (also without src/dst)
//	[src|dst] port P            implies (tcp or udp), no IP options,
//	                            not a fragment; P may be a service name
//	[src|dst] port OP P         relational ranges: >= <= > < == (a range
//	                            compiles to ORed aligned prefix masks)
//	icmp type T                 implies icmp
//	ip frag                     fragments (offset != 0 or MF set)
//	ip ttl N                    exact TTL (used by tests)
//	true | any | all | -        matches everything
//	false | none                matches nothing
//
// Combinators: and/&&/&, or/||/|, not/!, parentheses; juxtaposition of
// primitives means "and" (tcpdump style).

// Boolean expression AST.
type boolExpr interface{ isBoolExpr() }

type testExprNode struct{ e Expr } // a single word test
type andExprNode struct{ l, r boolExpr }
type orExprNode struct{ l, r boolExpr }
type notExprNode struct{ x boolExpr }
type constExprNode struct{ v bool }

func (testExprNode) isBoolExpr()  {}
func (andExprNode) isBoolExpr()   {}
func (orExprNode) isBoolExpr()    {}
func (notExprNode) isBoolExpr()   {}
func (constExprNode) isBoolExpr() {}

// IP header word tests (offsets relative to IP header start).
func protoTest(proto int) boolExpr {
	// Word at offset 8 covers TTL, protocol, checksum.
	return testExprNode{Expr{Offset: 8, Mask: 0x00ff0000, Value: uint32(proto) << 16}}
}

func ttlTest(ttl int) boolExpr {
	return testExprNode{Expr{Offset: 8, Mask: 0xff000000, Value: uint32(ttl) << 24}}
}

func srcHostTest(ip packet.IP4) boolExpr {
	return testExprNode{Expr{Offset: 12, Mask: 0xffffffff, Value: ip.Uint32()}}
}

func dstHostTest(ip packet.IP4) boolExpr {
	return testExprNode{Expr{Offset: 16, Mask: 0xffffffff, Value: ip.Uint32()}}
}

func netTest(offset int32, ip packet.IP4, prefixLen int) boolExpr {
	mask := uint32(0)
	if prefixLen > 0 {
		mask = ^uint32(0) << (32 - prefixLen)
	}
	return testExprNode{Expr{Offset: offset, Mask: mask, Value: ip.Uint32() & mask}}
}

// ihl5Test: header length exactly 20 bytes (no IP options), so the
// transport header sits at offset 20.
func ihl5Test() boolExpr {
	return testExprNode{Expr{Offset: 0, Mask: 0x0f000000, Value: 0x05000000}}
}

// notFragTest: fragment offset 0 and MF clear, so transport ports are
// present.
func notFragTest() boolExpr {
	return testExprNode{Expr{Offset: 4, Mask: 0x00003fff, Value: 0}}
}

func fragTest() boolExpr { return notExprNode{notFragTest()} }

// srcPortMaskTest/dstPortMaskTest compare the masked 16-bit port field;
// mask 0xffff is an exact port, a shorter prefix mask covers an aligned
// power-of-two range (see portRangePairs).
func srcPortMaskTest(value, mask uint32) boolExpr {
	return testExprNode{Expr{Offset: 20, Mask: mask << 16, Value: value << 16}}
}

func dstPortMaskTest(value, mask uint32) boolExpr {
	return testExprNode{Expr{Offset: 20, Mask: mask, Value: value}}
}

func srcPortTest(port int) boolExpr { return srcPortMaskTest(uint32(port), 0xffff) }

func dstPortTest(port int) boolExpr { return dstPortMaskTest(uint32(port), 0xffff) }

// portRangePairs decomposes the inclusive port range [lo, hi] into the
// minimal list of aligned power-of-two blocks, each expressed as a
// (value, mask) pair over the 16-bit port field. A relational port
// primitive ("port >= 1024") becomes the OR of these masked compares,
// which keeps range matching inside the word-compare decision-tree
// model — no new node kinds.
func portRangePairs(lo, hi uint32) [][2]uint32 {
	var pairs [][2]uint32
	for lo <= hi {
		size := uint32(1)
		for size < 1<<16 {
			next := size << 1
			if lo&(next-1) != 0 || lo+next-1 > hi {
				break
			}
			size = next
		}
		pairs = append(pairs, [2]uint32{lo, 0xffff &^ (size - 1)})
		lo += size
	}
	return pairs
}

// portRangeOr renders a port range as the OR of aligned masked tests.
func portRangeOr(mk func(value, mask uint32) boolExpr, lo, hi int) boolExpr {
	var e boolExpr
	for _, pm := range portRangePairs(uint32(lo), uint32(hi)) {
		t := mk(pm[0], pm[1])
		if e == nil {
			e = t
		} else {
			e = or2(e, t)
		}
	}
	return e
}

func icmpTypeTest(typ int) boolExpr {
	return testExprNode{Expr{Offset: 20, Mask: 0xff000000, Value: uint32(typ) << 24}}
}

// tcpFlagTest matches a TCP flag bit (byte 13 of the TCP header at IP
// offset 33; its word at offset 32 covers data-offset/flags/window).
func tcpFlagTest(bit uint32) boolExpr {
	return testExprNode{Expr{Offset: 32, Mask: bit << 16, Value: bit << 16}}
}

var tcpFlagNames = map[string]uint32{
	"fin": 0x01, "syn": 0x02, "rst": 0x04, "psh": 0x08, "ack": 0x10, "urg": 0x20,
}

func and2(l, r boolExpr) boolExpr { return andExprNode{l, r} }
func or2(l, r boolExpr) boolExpr  { return orExprNode{l, r} }

// transportGuard wraps a transport-header test with the conditions
// under which the header is actually at offset 20.
func transportGuard(t boolExpr) boolExpr {
	return and2(notFragTest(), and2(ihl5Test(), t))
}

var serviceNames = map[string]int{
	"ftp-data": 20, "ftp": 21, "ssh": 22, "telnet": 23, "smtp": 25,
	"dns": 53, "domain": 53, "bootps": 67, "bootpc": 68, "tftp": 69,
	"finger": 79, "www": 80, "http": 80, "pop3": 110, "auth": 113,
	"nntp": 119, "ntp": 123, "netbios-ns": 137, "netbios-dgm": 138,
	"netbios-ssn": 139, "imap": 143, "snmp": 161, "snmp-trap": 162,
	"bgp": 179, "https": 443, "rip": 520,
}

var protoNames = map[string]int{
	"icmp": packet.IPProtoICMP, "tcp": packet.IPProtoTCP, "udp": packet.IPProtoUDP,
}

var icmpTypeNames = map[string]int{
	"echo-reply": packet.ICMPEchoReply, "echo": packet.ICMPEchoRequest,
	"unreachable": packet.ICMPUnreachable, "redirect": packet.ICMPRedirect,
	"time-exceeded": packet.ICMPTimeExceeded, "parameter-problem": packet.ICMPParameterProb,
}

type ipParser struct {
	toks []string
	pos  int
}

func tokenizeIPExpr(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '!':
			toks = append(toks, string(c))
			i++
		case c == '&':
			if i+1 < len(s) && s[i+1] == '&' {
				toks = append(toks, "&&")
				i += 2
			} else {
				toks = append(toks, "&")
				i++
			}
		case c == '|':
			if i+1 < len(s) && s[i+1] == '|' {
				toks = append(toks, "||")
				i += 2
			} else {
				toks = append(toks, "|")
				i++
			}
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n()!&|", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *ipParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *ipParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// ParseIPExpr parses one predicate expression.
func ParseIPExpr(s string) (boolExpr, error) {
	p := &ipParser{toks: tokenizeIPExpr(s)}
	if len(p.toks) == 0 {
		return nil, fmt.Errorf("classifier: empty IP expression")
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("classifier: trailing tokens %q in IP expression", strings.Join(p.toks[p.pos:], " "))
	}
	return e, nil
}

func (p *ipParser) parseOr() (boolExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" || p.peek() == "||" || p.peek() == "|" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = or2(l, r)
	}
	return l, nil
}

func (p *ipParser) parseAnd() (boolExpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t == "and" || t == "&&" || t == "&" {
			p.next()
			t = p.peek()
		} else if t == "" || t == ")" || t == "or" || t == "||" || t == "|" {
			return l, nil
		}
		_ = t
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = and2(l, r)
	}
}

func (p *ipParser) parseUnary() (boolExpr, error) {
	switch t := p.peek(); t {
	case "not", "!":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExprNode{x}, nil
	case "(":
		p.next()
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("classifier: missing ')'")
		}
		return x, nil
	case "":
		return nil, fmt.Errorf("classifier: unexpected end of IP expression")
	}
	return p.parsePrimitive()
}

func (p *ipParser) parsePrimitive() (boolExpr, error) {
	t := p.next()
	switch t {
	case "true", "any", "all", "-":
		return constExprNode{true}, nil
	case "false", "none":
		return constExprNode{false}, nil
	case "tcp":
		// Optional flag primitive: "tcp syn", "tcp ack", ... (Click's
		// "tcp opt" syntax without the noise word).
		flagTok := p.peek()
		if flagTok == "opt" {
			p.next()
			flagTok = p.peek()
		}
		if bit, ok := tcpFlagNames[flagTok]; ok {
			p.next()
			return and2(protoTest(packet.IPProtoTCP), transportGuard(tcpFlagTest(bit))), nil
		}
		return protoTest(packet.IPProtoTCP), nil
	case "udp":
		return protoTest(protoNames[t]), nil
	case "icmp":
		if p.peek() == "type" {
			p.next()
			return p.parseICMPType()
		}
		return protoTest(packet.IPProtoICMP), nil
	case "ip":
		switch k := p.next(); k {
		case "proto":
			pt := p.next()
			if n, ok := protoNames[pt]; ok {
				return protoTest(n), nil
			}
			n, err := strconv.Atoi(pt)
			if err != nil || n < 0 || n > 255 {
				return nil, fmt.Errorf("classifier: bad protocol %q", pt)
			}
			return protoTest(n), nil
		case "frag":
			return fragTest(), nil
		case "ttl":
			n, err := strconv.Atoi(p.next())
			if err != nil || n < 0 || n > 255 {
				return nil, fmt.Errorf("classifier: bad ttl")
			}
			return ttlTest(n), nil
		default:
			return nil, fmt.Errorf("classifier: unknown 'ip %s'", k)
		}
	case "src", "dst":
		return p.parseDirectional(t)
	case "host":
		ip, err := packet.ParseIP4(p.next())
		if err != nil {
			return nil, err
		}
		return or2(srcHostTest(ip), dstHostTest(ip)), nil
	case "net":
		ip, plen, err := p.parseNet()
		if err != nil {
			return nil, err
		}
		return or2(netTest(12, ip, plen), netTest(16, ip, plen)), nil
	case "port":
		lo, hi, err := p.parsePortSpec()
		if err != nil {
			return nil, err
		}
		return and2(tcpOrUDP(), transportGuard(or2(
			portRangeOr(srcPortMaskTest, lo, hi),
			portRangeOr(dstPortMaskTest, lo, hi)))), nil
	}
	return nil, fmt.Errorf("classifier: unknown primitive %q", t)
}

func tcpOrUDP() boolExpr {
	return or2(protoTest(packet.IPProtoTCP), protoTest(packet.IPProtoUDP))
}

// parseDirectional handles "src ..."/"dst ...": host, net, port, or a
// bare address.
func (p *ipParser) parseDirectional(dir string) (boolExpr, error) {
	hostAt := srcHostTest
	netOff := int32(12)
	if dir == "dst" {
		hostAt = dstHostTest
		netOff = 16
	}
	switch k := p.peek(); k {
	case "host":
		p.next()
		ip, err := packet.ParseIP4(p.next())
		if err != nil {
			return nil, err
		}
		return hostAt(ip), nil
	case "net":
		p.next()
		ip, plen, err := p.parseNet()
		if err != nil {
			return nil, err
		}
		return netTest(netOff, ip, plen), nil
	case "port":
		p.next()
		lo, hi, err := p.parsePortSpec()
		if err != nil {
			return nil, err
		}
		mk := srcPortMaskTest
		if dir == "dst" {
			mk = dstPortMaskTest
		}
		return and2(tcpOrUDP(), transportGuard(portRangeOr(mk, lo, hi))), nil
	default:
		// Bare address, possibly with a prefix length.
		tok := p.next()
		if slash := strings.IndexByte(tok, '/'); slash >= 0 {
			ip, err := packet.ParseIP4(tok[:slash])
			if err != nil {
				return nil, err
			}
			plen, err := strconv.Atoi(tok[slash+1:])
			if err != nil || plen < 0 || plen > 32 {
				return nil, fmt.Errorf("classifier: bad prefix length in %q", tok)
			}
			return netTest(netOff, ip, plen), nil
		}
		ip, err := packet.ParseIP4(tok)
		if err != nil {
			return nil, fmt.Errorf("classifier: expected host/net/port/address after %q: %v", dir, err)
		}
		return hostAt(ip), nil
	}
}

func (p *ipParser) parseNet() (packet.IP4, int, error) {
	tok := p.next()
	addr := tok
	plen := 32
	if slash := strings.IndexByte(tok, '/'); slash >= 0 {
		addr = tok[:slash]
		n, err := strconv.Atoi(tok[slash+1:])
		if err != nil || n < 0 || n > 32 {
			return packet.IP4{}, 0, fmt.Errorf("classifier: bad prefix length in %q", tok)
		}
		plen = n
	} else if p.peek() == "mask" {
		p.next()
		maskIP, err := packet.ParseIP4(p.next())
		if err != nil {
			return packet.IP4{}, 0, err
		}
		m := maskIP.Uint32()
		plen = 0
		for m&0x80000000 != 0 {
			plen++
			m <<= 1
		}
		if m != 0 {
			return packet.IP4{}, 0, fmt.Errorf("classifier: non-contiguous netmask %v", maskIP)
		}
	}
	ip, err := packet.ParseIP4(addr)
	if err != nil {
		return packet.IP4{}, 0, err
	}
	return ip, plen, nil
}

// parsePortSpec parses the value part of a port primitive: a single
// port (exact match), or a relational form ">= P", "<= P", "> P",
// "< P", "== P" covering a range. An empty range ("port > 65535") is a
// configuration error, not a match-nothing silently.
func (p *ipParser) parsePortSpec() (lo, hi int, err error) {
	op := ""
	switch p.peek() {
	case ">=", "<=", ">", "<", "==", "=":
		op = p.next()
	}
	n, err := p.parsePortNum()
	if err != nil {
		return 0, 0, err
	}
	switch op {
	case ">=":
		return n, 65535, nil
	case "<=":
		return 0, n, nil
	case ">":
		if n >= 65535 {
			return 0, 0, fmt.Errorf("classifier: empty port range \"> %d\"", n)
		}
		return n + 1, 65535, nil
	case "<":
		if n <= 0 {
			return 0, 0, fmt.Errorf("classifier: empty port range \"< %d\"", n)
		}
		return 0, n - 1, nil
	default:
		return n, n, nil
	}
}

func (p *ipParser) parsePortNum() (int, error) {
	tok := p.next()
	if n, ok := serviceNames[tok]; ok {
		return n, nil
	}
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 || n > 65535 {
		return 0, fmt.Errorf("classifier: bad port %q", tok)
	}
	return n, nil
}

func (p *ipParser) parseICMPType() (boolExpr, error) {
	tok := p.next()
	var typ int
	if n, ok := icmpTypeNames[tok]; ok {
		typ = n
	} else {
		n, err := strconv.Atoi(tok)
		if err != nil || n < 0 || n > 255 {
			return nil, fmt.Errorf("classifier: bad icmp type %q", tok)
		}
		typ = n
	}
	return and2(protoTest(packet.IPProtoICMP), transportGuard(icmpTypeTest(typ))), nil
}

// compileBool lowers a boolean expression into tree nodes, appending to
// pr.Exprs bottom-up; succ/fail are the branch destinations. An
// expression node kind the compiler does not know is reported as an
// error, not a panic: the expression came from user configuration, and
// a malformed config must not crash the tools.
func compileBool(pr *Program, e boolExpr, succ, fail Target) (Target, error) {
	switch e := e.(type) {
	case constExprNode:
		if e.v {
			return succ, nil
		}
		return fail, nil
	case testExprNode:
		ex := e.e
		ex.Yes, ex.No = succ, fail
		pr.Exprs = append(pr.Exprs, ex)
		return Target(len(pr.Exprs) - 1), nil
	case notExprNode:
		return compileBool(pr, e.x, fail, succ)
	case andExprNode:
		rEntry, err := compileBool(pr, e.r, succ, fail)
		if err != nil {
			return 0, err
		}
		return compileBool(pr, e.l, rEntry, fail)
	case orExprNode:
		rEntry, err := compileBool(pr, e.r, succ, fail)
		if err != nil {
			return 0, err
		}
		return compileBool(pr, e.l, succ, rEntry)
	}
	return 0, fmt.Errorf("classifier: unknown boolean expression node %T", e)
}

// BuildIPClassifierProgram compiles IPClassifier arguments: one
// predicate per output port, first match wins, unmatched packets are
// dropped.
func BuildIPClassifierProgram(exprs []string) (*Program, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("classifier: no expressions")
	}
	pr := &Program{NOutputs: len(exprs)}
	fail := Drop
	for i := len(exprs) - 1; i >= 0; i-- {
		ast, err := ParseIPExpr(exprs[i])
		if err != nil {
			return nil, fmt.Errorf("expression %d: %v", i, err)
		}
		if fail, err = compileBool(pr, ast, LeafPort(i), fail); err != nil {
			return nil, fmt.Errorf("expression %d: %v", i, err)
		}
	}
	pr.Entry = fail
	pr.renumber()
	pr.computeSafeLength()
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return pr, nil
}

// Rule is one IPFilter rule: matching packets go to output Port, or are
// dropped when Port < 0.
type Rule struct {
	Port int
	Expr string
}

// ParseIPFilterRules parses IPFilter arguments. Each rule starts with an
// action: "allow" (output 0), "deny"/"drop" (discard), or an output
// port number, followed by a predicate expression — Click's IPFilter
// action set.
func ParseIPFilterRules(args []string) ([]Rule, error) {
	var rules []Rule
	for i, arg := range args {
		fields := strings.SplitN(strings.TrimSpace(arg), " ", 2)
		if len(fields) == 0 || fields[0] == "" {
			return nil, fmt.Errorf("rule %d: empty", i)
		}
		action := fields[0]
		rest := ""
		if len(fields) == 2 {
			rest = fields[1]
		}
		switch {
		case action == "allow":
			rules = append(rules, Rule{Port: 0, Expr: rest})
		case action == "deny" || action == "drop":
			rules = append(rules, Rule{Port: -1, Expr: rest})
		default:
			port, err := strconv.Atoi(action)
			if err != nil || port < 0 {
				return nil, fmt.Errorf("rule %d: action must be allow/deny/drop/PORT, got %q", i, action)
			}
			rules = append(rules, Rule{Port: port, Expr: rest})
		}
	}
	return rules, nil
}

// IPFilterOutputs returns the number of output ports a rule list uses.
func IPFilterOutputs(rules []Rule) int {
	max := 0
	for _, r := range rules {
		if r.Port+1 > max {
			max = r.Port + 1
		}
	}
	if max == 0 {
		max = 1
	}
	return max
}

// BuildIPFilterProgram compiles IPFilter rules: matching packets emerge
// on the rule's output port (allow = 0), denied packets are dropped;
// the implicit final rule denies everything (firewall convention).
func BuildIPFilterProgram(args []string) (*Program, error) {
	rules, err := ParseIPFilterRules(args)
	if err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("classifier: no rules")
	}
	pr := &Program{NOutputs: IPFilterOutputs(rules)}
	fail := Drop
	for i := len(rules) - 1; i >= 0; i-- {
		ast, err := ParseIPExpr(rules[i].Expr)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %v", i, err)
		}
		action := Drop
		if rules[i].Port >= 0 {
			action = LeafPort(rules[i].Port)
		}
		if fail, err = compileBool(pr, ast, action, fail); err != nil {
			return nil, fmt.Errorf("rule %d: %v", i, err)
		}
	}
	pr.Entry = fail
	pr.renumber()
	pr.computeSafeLength()
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return pr, nil
}
