package classifier

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

// ethFrame builds raw Ethernet frame bytes with the given EtherType.
func ethFrame(etherType uint16, tail int) []byte {
	b := make([]byte, 14+tail)
	b[12] = byte(etherType >> 8)
	b[13] = byte(etherType)
	return b
}

func TestClassifierFigure3(t *testing.T) {
	// "Classifier(12/0800, -)": IP packets to output 0, rest to 1.
	pr, err := BuildClassifierProgram([]string{"12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	ip := ethFrame(0x0800, 20)
	arp := ethFrame(0x0806, 20)
	if port, ok, _ := pr.Match(ip); !ok || port != 0 {
		t.Errorf("IP packet -> %d,%v; want 0", port, ok)
	}
	if port, ok, _ := pr.Match(arp); !ok || port != 1 {
		t.Errorf("ARP packet -> %d,%v; want 1", port, ok)
	}
	// The optimized Figure 3 tree is a single node.
	if len(pr.Exprs) != 1 {
		t.Errorf("optimized tree has %d nodes, want 1:\n%s", len(pr.Exprs), pr)
	}
}

func TestClassifierIPRouterConfig(t *testing.T) {
	// The IP router's classifier: ARP requests, ARP replies, IP, other.
	pr, err := BuildClassifierProgram([]string{"12/0806 20/0001", "12/0806 20/0002", "12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	arpReq := ethFrame(0x0806, 28)
	arpReq[20], arpReq[21] = 0x00, 0x01
	arpRep := ethFrame(0x0806, 28)
	arpRep[20], arpRep[21] = 0x00, 0x02
	ip := ethFrame(0x0800, 28)
	other := ethFrame(0x88cc, 28)
	cases := []struct {
		data []byte
		port int
	}{{arpReq, 0}, {arpRep, 1}, {ip, 2}, {other, 3}}
	for i, c := range cases {
		if port, ok, _ := pr.Match(c.data); !ok || port != c.port {
			t.Errorf("case %d -> %d,%v; want %d", i, port, ok, c.port)
		}
	}
}

func TestClassifierWildcardsAndMasks(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"0/08??", "0/00ff%00ff", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	d1 := []byte{0x08, 0x42, 0, 0}
	d2 := []byte{0x13, 0xff, 0, 0}
	d3 := []byte{0x13, 0x00, 0, 0}
	if p, _, _ := pr.Match(d1); p != 0 {
		t.Errorf("wildcard match -> %d", p)
	}
	if p, _, _ := pr.Match(d2); p != 1 {
		t.Errorf("mask match -> %d", p)
	}
	if p, _, _ := pr.Match(d3); p != 2 {
		t.Errorf("fallthrough -> %d", p)
	}
}

func TestClassifierNegation(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"!12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	if p, _, _ := pr.Match(ethFrame(0x0806, 8)); p != 0 {
		t.Errorf("non-IP -> %d, want 0", p)
	}
	if p, _, _ := pr.Match(ethFrame(0x0800, 8)); p != 1 {
		t.Errorf("IP -> %d, want 1", p)
	}
}

func TestClassifierShortPacketFailsTest(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	short := []byte{0, 0, 0, 0, 0, 0, 0, 0} // 8 bytes; test at 12 must fail
	if p, ok, _ := pr.Match(short); !ok || p != 1 {
		t.Errorf("short packet -> %d,%v; want 1 (match-all)", p, ok)
	}
}

func TestClassifierUnmatchedDrops(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"12/0800"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	if _, ok, _ := pr.Match(ethFrame(0x0806, 8)); ok {
		t.Error("unmatched packet did not drop")
	}
}

func TestClassifierBadPatterns(t *testing.T) {
	bad := [][]string{
		{""},
		{"noslash"},
		{"x/0800"},
		{"12/080"},             // odd hex digits
		{"12/08zz"},            // bad hex
		{"12/08%0"},            // mask length mismatch
		{"!12/08000000000000"}, // negation spanning words... 8 bytes crosses words at offset 12
		{},
	}
	for _, pats := range bad {
		if _, err := BuildClassifierProgram(pats); err == nil {
			t.Errorf("BuildClassifierProgram(%q) succeeded", pats)
		}
	}
}

// makeUDP returns raw IP-header-first bytes of a UDP packet.
func makeUDP(src, dst packet.IP4, sport, dport uint16) []byte {
	p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{}, src, dst, sport, dport, make([]byte, 14))
	return p.Data()[14:]
}

func TestIPClassifierBasics(t *testing.T) {
	pr, err := BuildIPClassifierProgram([]string{
		"src 10.0.0.2 && tcp && src port 25",
		"udp && dst port 53",
		"icmp",
		"-",
	})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()

	udpDNS := makeUDP(packet.MakeIP4(10, 0, 0, 9), packet.MakeIP4(8, 8, 8, 8), 4000, 53)
	if p, _, _ := pr.Match(udpDNS); p != 1 {
		t.Errorf("UDP/53 -> %d, want 1", p)
	}
	udpOther := makeUDP(packet.MakeIP4(10, 0, 0, 9), packet.MakeIP4(8, 8, 8, 8), 4000, 54)
	if p, _, _ := pr.Match(udpOther); p != 3 {
		t.Errorf("UDP/54 -> %d, want 3", p)
	}

	// TCP from 10.0.0.2 port 25.
	tcp := makeUDP(packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(1, 2, 3, 4), 25, 9999)
	tcp[9] = packet.IPProtoTCP
	if p, _, _ := pr.Match(tcp); p != 0 {
		t.Errorf("TCP smtp src -> %d, want 0", p)
	}
	// Same but wrong source address.
	tcp2 := makeUDP(packet.MakeIP4(10, 0, 0, 3), packet.MakeIP4(1, 2, 3, 4), 25, 9999)
	tcp2[9] = packet.IPProtoTCP
	if p, _, _ := pr.Match(tcp2); p != 3 {
		t.Errorf("TCP wrong src -> %d, want 3", p)
	}

	icmp := makeUDP(packet.MakeIP4(9, 9, 9, 9), packet.MakeIP4(1, 2, 3, 4), 0, 0)
	icmp[9] = packet.IPProtoICMP
	if p, _, _ := pr.Match(icmp); p != 2 {
		t.Errorf("ICMP -> %d, want 2", p)
	}
}

func TestIPClassifierNetAndHost(t *testing.T) {
	pr, err := BuildIPClassifierProgram([]string{
		"dst net 18.26.4.0/24",
		"host 10.0.0.1",
		"src net 192.168.0.0 mask 255.255.0.0",
		"-",
	})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	cases := []struct {
		src, dst packet.IP4
		want     int
	}{
		{packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(18, 26, 4, 99), 0},
		{packet.MakeIP4(10, 0, 0, 1), packet.MakeIP4(2, 2, 2, 2), 1},
		{packet.MakeIP4(2, 2, 2, 2), packet.MakeIP4(10, 0, 0, 1), 1},
		{packet.MakeIP4(192, 168, 7, 7), packet.MakeIP4(2, 2, 2, 2), 2},
		{packet.MakeIP4(192, 169, 7, 7), packet.MakeIP4(2, 2, 2, 2), 3},
	}
	for i, c := range cases {
		d := makeUDP(c.src, c.dst, 1, 2)
		if p, _, _ := pr.Match(d); p != c.want {
			t.Errorf("case %d -> %d, want %d", i, p, c.want)
		}
	}
}

func TestIPClassifierFragmentGuard(t *testing.T) {
	pr, err := BuildIPClassifierProgram([]string{"udp && dst port 53", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	frag := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 999, 53)
	frag[6], frag[7] = 0x00, 0x10 // fragment offset 16*8
	// A fragment's "ports" are payload bytes; the guard must refuse the
	// port rule and fall through to the match-all.
	if p, _, _ := pr.Match(frag); p != 1 {
		t.Errorf("fragment -> %d, want 1", p)
	}
	whole := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 999, 53)
	if p, _, _ := pr.Match(whole); p != 0 {
		t.Errorf("unfragmented -> %d, want 0", p)
	}
}

func TestIPExprParseErrors(t *testing.T) {
	bad := []string{
		"", "bogus", "src host", "src host 1.2.3", "ip proto 999",
		"port 99999", "(tcp", "tcp or", "icmp type banana", "not",
		"src net 1.2.3.0 mask 255.0.255.0",
		"tcp))",
	}
	for _, s := range bad {
		if _, err := ParseIPExpr(s); err == nil {
			t.Errorf("ParseIPExpr(%q) succeeded", s)
		}
	}
}

func TestIPExprOperatorsEquivalent(t *testing.T) {
	variants := []string{
		"src 10.0.0.2 & tcp & src port smtp",
		"src 10.0.0.2 && tcp && src port 25",
		"src host 10.0.0.2 and tcp and src port 25",
		"src 10.0.0.2 tcp src port 25", // juxtaposition
	}
	var ref *Program
	for i, v := range variants {
		pr, err := BuildIPClassifierProgram([]string{v, "-"})
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		pr.Optimize()
		if ref == nil {
			ref = pr
			continue
		}
		if !pr.Equal(ref) {
			t.Errorf("variant %d compiles differently:\n%s\nvs\n%s", i, pr, ref)
		}
	}
}

func TestIPFilterAllowDeny(t *testing.T) {
	pr, err := BuildIPFilterProgram([]string{
		"deny src net 10.0.0.0/8",
		"allow tcp && dst port 80",
		"allow icmp",
		"deny all",
	})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	if pr.NOutputs != 1 {
		t.Fatalf("NOutputs = %d", pr.NOutputs)
	}
	web := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 5555, 80)
	web[9] = packet.IPProtoTCP
	if _, ok, _ := pr.Match(web); !ok {
		t.Error("allowed packet dropped")
	}
	bad := makeUDP(packet.MakeIP4(10, 9, 9, 9), packet.MakeIP4(2, 2, 2, 2), 5555, 80)
	bad[9] = packet.IPProtoTCP
	if _, ok, _ := pr.Match(bad); ok {
		t.Error("denied source allowed")
	}
	other := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 5555, 81)
	other[9] = packet.IPProtoTCP
	if _, ok, _ := pr.Match(other); ok {
		t.Error("default deny failed")
	}
}

func TestIPFilterBadRules(t *testing.T) {
	bad := [][]string{
		{"permit tcp"},
		{"allow"},
		{""},
		{},
	}
	for _, args := range bad {
		if _, err := BuildIPFilterProgram(args); err == nil {
			t.Errorf("BuildIPFilterProgram(%q) succeeded", args)
		}
	}
}

func TestOptimizeRemovesRedundantTests(t *testing.T) {
	// "tcp && src port 25": the port primitive re-tests (tcp or udp);
	// contraction should remove the re-test of proto given tcp.
	pr, err := BuildIPClassifierProgram([]string{"tcp && src port 25", "-"})
	if err != nil {
		t.Fatal(err)
	}
	before := len(pr.Exprs)
	pr.Optimize()
	after := len(pr.Exprs)
	if after >= before {
		t.Errorf("Optimize did not shrink tree: %d -> %d\n%s", before, after, pr)
	}
	// Count proto tests remaining: at most one.
	protoTests := 0
	for _, e := range pr.Exprs {
		if e.Offset == 8 && e.Mask == 0x00ff0000 {
			protoTests++
		}
	}
	if protoTests > 1 {
		t.Errorf("%d proto tests survive optimization:\n%s", protoTests, pr)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	patterns := []string{"12/0806 20/0001", "12/0806 20/0002", "12/0800", "!12/9000", "-"}
	raw, err := BuildClassifierProgram(patterns)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := BuildClassifierProgram(patterns)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 14 + rng.Intn(40)
		d := make([]byte, n)
		rng.Read(d)
		// Bias toward interesting ethertypes half the time.
		if rng.Intn(2) == 0 {
			types := []uint16{0x0800, 0x0806, 0x9000}
			ty := types[rng.Intn(len(types))]
			d[12], d[13] = byte(ty>>8), byte(ty)
		}
		p1, ok1, _ := raw.Match(d)
		p2, ok2, _ := opt.Match(d)
		if p1 != p2 || ok1 != ok2 {
			t.Fatalf("optimization changed semantics on %x: (%d,%v) vs (%d,%v)", d, p1, ok1, p2, ok2)
		}
	}
}

func TestCompiledMatchesInterpreter(t *testing.T) {
	progs := []*Program{}
	for _, pats := range [][]string{
		{"12/0800", "-"},
		{"12/0806 20/0001", "12/0806 20/0002", "12/0800", "-"},
		{"0/????11", "4/22%0f", "-"},
	} {
		pr, err := BuildClassifierProgram(pats)
		if err != nil {
			t.Fatal(err)
		}
		pr.Optimize()
		progs = append(progs, pr)
	}
	ipPr, err := BuildIPClassifierProgram([]string{"tcp && dst port 80", "udp", "icmp type echo", "-"})
	if err != nil {
		t.Fatal(err)
	}
	ipPr.Optimize()
	progs = append(progs, ipPr)

	rng := rand.New(rand.NewSource(7))
	for pi, pr := range progs {
		comp := Compile(pr)
		for trial := 0; trial < 3000; trial++ {
			n := rng.Intn(64)
			d := make([]byte, n)
			rng.Read(d)
			p1, ok1, s1 := pr.Match(d)
			p2, ok2, s2 := comp.Match(d)
			if p1 != p2 || ok1 != ok2 {
				t.Fatalf("prog %d: compiled diverges on %x: (%d,%v) vs (%d,%v)", pi, d, p1, ok1, p2, ok2)
			}
			if s1 != s2 {
				t.Fatalf("prog %d: step counts differ on %x: %d vs %d", pi, d, s1, s2)
			}
		}
	}
}

func TestCompiledEquivalenceProperty(t *testing.T) {
	pr, err := BuildIPClassifierProgram([]string{"src net 10.0.0.0/8 && udp", "dst port 53", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	comp := Compile(pr)
	f := func(d []byte) bool {
		p1, ok1, _ := pr.Match(d)
		p2, ok2, _ := comp.Match(d)
		return p1 == p2 && ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestProgramTextRoundTrip(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"12/0806 20/0001", "12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	text := pr.String()
	back, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("ParseProgram failed: %v\n%s", err, text)
	}
	if !back.Equal(pr) {
		t.Errorf("round trip changed program:\n%s\nvs\n%s", text, back)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []*Program{
		{Exprs: []Expr{{Offset: 2, Mask: 1, Value: 1, Yes: Drop, No: Drop}}, Entry: 0, NOutputs: 1},                                                   // unaligned
		{Exprs: []Expr{{Offset: 0, Mask: 1, Value: 2, Yes: Drop, No: Drop}}, Entry: 0, NOutputs: 1},                                                   // value outside mask
		{Exprs: []Expr{{Offset: 0, Mask: 1, Value: 1, Yes: 5, No: Drop}}, Entry: 0, NOutputs: 1},                                                      // out of range
		{Exprs: []Expr{{Offset: 0, Mask: 1, Value: 1, Yes: LeafPort(3), No: Drop}}, Entry: 0, NOutputs: 2},                                            // port out of range
		{Exprs: []Expr{{Offset: 0, Mask: 1, Value: 1, Yes: Drop, No: Drop}, {Offset: 0, Mask: 1, Value: 1, Yes: 0, No: Drop}}, Entry: 1, NOutputs: 1}, // backward edge
	}
	for i, pr := range cases {
		if err := pr.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestDepth(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"12/0806 20/0001", "12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Depth() < 2 {
		t.Errorf("depth = %d", pr.Depth())
	}
	leafOnly := &Program{Entry: LeafPort(0), NOutputs: 1}
	if leafOnly.Depth() != 0 {
		t.Errorf("leaf-only depth = %d", leafOnly.Depth())
	}
}

func TestGenerateGoSource(t *testing.T) {
	pr, err := BuildClassifierProgram([]string{"12/0800", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	src := GenerateGoSource("FastClassifier_a_ac", pr)
	for _, want := range []string{
		"package fastclassifier",
		"type FastClassifier_a_ac struct",
		"step_0:",
		"c.outputs[0](p)",
		"c.outputs[1](p)",
		"be32(data[12:])",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q:\n%s", want, src)
		}
	}
}

func TestTargetEncoding(t *testing.T) {
	f := func(p uint8) bool {
		t := LeafPort(int(p))
		got, ok := t.Port()
		return ok && got == int(p) && t.IsLeaf()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !Drop.IsLeaf() {
		t.Error("Drop not a leaf")
	}
	if _, ok := Drop.Port(); ok {
		t.Error("Drop has a port")
	}
}

func TestIPFilterNumberedPorts(t *testing.T) {
	pr, err := BuildIPFilterProgram([]string{
		"0 tcp && dst port 80",
		"1 udp && dst port 53",
		"2 icmp",
		"deny all",
	})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	if pr.NOutputs != 3 {
		t.Fatalf("NOutputs = %d, want 3", pr.NOutputs)
	}
	web := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 5555, 80)
	web[9] = packet.IPProtoTCP
	if p, ok, _ := pr.Match(web); !ok || p != 0 {
		t.Errorf("web -> %d,%v", p, ok)
	}
	dns := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 5555, 53)
	if p, ok, _ := pr.Match(dns); !ok || p != 1 {
		t.Errorf("dns -> %d,%v", p, ok)
	}
	icmp := makeUDP(packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 0, 0)
	icmp[9] = packet.IPProtoICMP
	if p, ok, _ := pr.Match(icmp); !ok || p != 2 {
		t.Errorf("icmp -> %d,%v", p, ok)
	}
	if _, err := BuildIPFilterProgram([]string{"-3 tcp"}); err == nil {
		t.Error("negative port accepted")
	}
}

func TestTCPFlagPrimitives(t *testing.T) {
	pr, err := BuildIPClassifierProgram([]string{"tcp syn && !(tcp ack)", "tcp ack", "-"})
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	mk := func(flags byte) []byte {
		p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
			packet.MakeIP4(1, 1, 1, 1), packet.MakeIP4(2, 2, 2, 2), 1, 2, make([]byte, 14))
		p.Pull(14)
		d := p.Data()
		d[9] = packet.IPProtoTCP
		// Ensure the packet is long enough for a TCP header: pad.
		for len(d) < 40 {
			d = p.Put(4)
		}
		d[33] = flags
		h := packet.IP4Header(d)
		h.UpdateChecksum()
		return d
	}
	if p, _, _ := pr.Match(mk(0x02)); p != 0 { // SYN only
		t.Errorf("SYN -> %d, want 0", p)
	}
	if p, _, _ := pr.Match(mk(0x12)); p != 1 { // SYN+ACK
		t.Errorf("SYN+ACK -> %d, want 1", p)
	}
	if p, _, _ := pr.Match(mk(0x00)); p != 2 {
		t.Errorf("no flags -> %d, want 2", p)
	}
}
