package classifier_test

import (
	"fmt"

	"repro/internal/classifier"
)

// The Figure 3 classifier: "Classifier(12/0800, -)" sends IP packets to
// output 0 and everything else to output 1. After optimization the
// whole tree is a single masked-word comparison.
func ExampleBuildClassifierProgram() {
	prog, err := classifier.BuildClassifierProgram([]string{"12/0800", "-"})
	if err != nil {
		panic(err)
	}
	prog.Optimize()
	fmt.Println("nodes:", len(prog.Exprs))

	ipPacket := make([]byte, 20)
	ipPacket[12], ipPacket[13] = 0x08, 0x00
	port, _, _ := prog.Match(ipPacket)
	fmt.Println("IP packet -> output", port)

	arpPacket := make([]byte, 20)
	arpPacket[12], arpPacket[13] = 0x08, 0x06
	port, _, _ = prog.Match(arpPacket)
	fmt.Println("ARP packet -> output", port)
	// Output:
	// nodes: 1
	// IP packet -> output 0
	// ARP packet -> output 1
}

// Compiling a tree produces the click-fastclassifier form: identical
// semantics, inlined constants.
func ExampleCompile() {
	prog, _ := classifier.BuildIPClassifierProgram([]string{"udp && dst port 53", "-"})
	prog.Optimize()
	comp := classifier.Compile(prog)

	// A 20-byte IP header + 8-byte UDP header addressed to port 53.
	pkt := make([]byte, 28)
	pkt[0] = 0x45 // version 4, IHL 5
	pkt[9] = 17   // UDP
	pkt[22], pkt[23] = 0, 53
	a, _, _ := prog.Match(pkt)
	b, _, _ := comp.Match(pkt)
	fmt.Println("interpreter:", a, "compiled:", b)
	// Output:
	// interpreter: 0 compiled: 0
}
