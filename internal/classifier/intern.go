package classifier

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
)

// InternTable is a hash-cons table for fused classifier programs,
// shared across every configuration a process hosts. Within one
// program SpecializeFDD already hash-conses subtrees; the table lifts
// that property across the combine boundary: two tenants whose
// rulesets compose to the same decision diagram share one canonical
// Program and one Compiled matcher instead of carrying private copies,
// so resident diagram nodes grow with the number of *distinct*
// rulesets, not the number of tenants.
//
// Entries are content-addressed: the class name is derived from the
// program's canonical text, so the name a ruleset gets is independent
// of admission order — identical configurations produce identical
// combined graphs no matter the create/swap/delete history.
//
// Interned programs and their matchers are read-only (Compiled.Match
// is pure); per-instance counters live in the elements, never here, so
// sharing a diagram between tenants shares no mutable state. Reference
// counts track how many live configurations use each entry, which is
// what makes the resident-node statistics honest: an entry whose users
// are all gone stops counting as resident, and re-admission revives it
// as a cache hit.
type InternTable struct {
	mu      sync.Mutex
	byKey   map[string]*InternEntry // canonical program text -> entry
	byName  map[string]*InternEntry
	lookups int64
	hits    int64
}

// InternEntry is one canonical fused program.
type InternEntry struct {
	// Name is the content-derived shared class name.
	Name string
	// Program is the canonical decision diagram. Read-only.
	Program *Program
	// Compiled is the shared matcher closure DAG. Read-only.
	Compiled *Compiled
	// Nodes is the diagram's node count (len(Program.Exprs)).
	Nodes int

	refs int
}

// NewInternTable returns an empty table.
func NewInternTable() *InternTable {
	return &InternTable{
		byKey:  map[string]*InternEntry{},
		byName: map[string]*InternEntry{},
	}
}

// SharedClassPrefix starts every content-addressed class name the
// table mints.
const SharedClassPrefix = "FusedShared_"

// Intern returns the canonical entry for prog, creating (and
// compiling) it on first sight. The caller must treat prog as frozen
// from this point; equal programs return the identical entry.
func (t *InternTable) Intern(prog *Program) *InternEntry {
	key := prog.String()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	if e, ok := t.byKey[key]; ok {
		t.hits++
		return e
	}
	sum := sha256.Sum256([]byte(key))
	// 48 hash bits are plenty for a process-local namespace; extend on
	// the (astronomical) chance of a truncated-digest collision.
	name := ""
	for n := 6; n <= len(sum); n++ {
		name = SharedClassPrefix + hex.EncodeToString(sum[:n])
		if _, taken := t.byName[name]; !taken {
			break
		}
	}
	e := &InternEntry{
		Name:     name,
		Program:  prog,
		Compiled: Compile(prog),
		Nodes:    len(prog.Exprs),
	}
	t.byKey[key] = e
	t.byName[name] = e
	return e
}

// Lookup returns the entry registered under a shared class name.
func (t *InternTable) Lookup(name string) (*InternEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byName[name]
	return e, ok
}

// Retain records one configuration using the named entries (a tenant
// admission). Unknown names are ignored.
func (t *InternTable) Retain(names []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range names {
		if e, ok := t.byName[n]; ok {
			e.refs++
		}
	}
}

// Release undoes a Retain when a configuration leaves (tenant delete
// or swap-away). Entries stay in the table at zero references — they
// are canonical and may be revived — but stop counting as resident.
func (t *InternTable) Release(names []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range names {
		if e, ok := t.byName[n]; ok && e.refs > 0 {
			e.refs--
		}
	}
}

// InternStats is a sharing snapshot. ResidentNodes is the memory
// actually held by referenced diagrams; UnsharedNodes is what
// residency would cost if every reference carried a private copy — the
// ratio is the sharing factor the mgmtscale benchmark reports.
type InternStats struct {
	Programs      int   `json:"programs"`       // distinct referenced programs
	Refs          int   `json:"refs"`           // total references across configurations
	ResidentNodes int   `json:"resident_nodes"` // sum of nodes over referenced programs
	UnsharedNodes int   `json:"unshared_nodes"` // sum of refs x nodes
	Lookups       int64 `json:"lookups"`
	Hits          int64 `json:"hits"`
}

// Stats snapshots the table.
func (t *InternTable) Stats() InternStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s InternStats
	s.Lookups, s.Hits = t.lookups, t.hits
	names := make([]string, 0, len(t.byName))
	for n := range t.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := t.byName[n]
		if e.refs == 0 {
			continue
		}
		s.Programs++
		s.Refs += e.refs
		s.ResidentNodes += e.Nodes
		s.UnsharedNodes += e.refs * e.Nodes
	}
	return s
}
