package classifier

import (
	"strings"
	"testing"
)

func internTestProgram(t *testing.T, rules []string) *Program {
	t.Helper()
	p, err := BuildIPFilterProgram(rules)
	if err != nil {
		t.Fatal(err)
	}
	p.Optimize()
	return p
}

func TestInternTableSharedFDD(t *testing.T) {
	table := NewInternTable()
	rules := []string{"allow udp && dst port 53", "deny all"}
	a := internTestProgram(t, rules)
	b := internTestProgram(t, rules) // equal program, distinct object
	c := internTestProgram(t, []string{"allow tcp && dst port 80", "deny all"})

	ea := table.Intern(a)
	if !strings.HasPrefix(ea.Name, SharedClassPrefix) {
		t.Errorf("interned name %q lacks prefix %q", ea.Name, SharedClassPrefix)
	}
	if ea.Compiled == nil || ea.Nodes != len(a.Exprs) {
		t.Errorf("entry not populated: %+v", ea)
	}
	if eb := table.Intern(b); eb != ea {
		t.Error("equal programs interned to different entries")
	}
	ec := table.Intern(c)
	if ec == ea || ec.Name == ea.Name {
		t.Error("distinct programs share an entry")
	}
	if e, ok := table.Lookup(ea.Name); !ok || e != ea {
		t.Errorf("lookup %q = %v, %v", ea.Name, e, ok)
	}

	// Names are content-derived: a fresh table interning the same
	// program in a different order mints the same name.
	other := NewInternTable()
	other.Intern(c)
	if got := other.Intern(internTestProgram(t, rules)); got.Name != ea.Name {
		t.Errorf("content-addressed name differs across tables: %q vs %q", got.Name, ea.Name)
	}

	// Residency follows reference counts, not table membership.
	table.Retain([]string{ea.Name})
	table.Retain([]string{ea.Name, ec.Name})
	s := table.Stats()
	if s.Programs != 2 || s.Refs != 3 {
		t.Errorf("stats after retains = %+v, want 2 programs, 3 refs", s)
	}
	if want := 2*ea.Nodes + ec.Nodes; s.UnsharedNodes != want {
		t.Errorf("unshared nodes = %d, want %d", s.UnsharedNodes, want)
	}
	if want := ea.Nodes + ec.Nodes; s.ResidentNodes != want {
		t.Errorf("resident nodes = %d, want %d", s.ResidentNodes, want)
	}
	table.Release([]string{ea.Name, ec.Name})
	table.Release([]string{ea.Name})
	s = table.Stats()
	if s.Programs != 0 || s.Refs != 0 || s.ResidentNodes != 0 {
		t.Errorf("stats after releases = %+v, want empty residency", s)
	}
	// Zero-referenced entries stay canonical and revive as hits.
	if e := table.Intern(internTestProgram(t, rules)); e != ea {
		t.Error("released entry was not revived")
	}
	if s := table.Stats(); s.Hits == 0 {
		t.Error("revival did not count as an intern hit")
	}
}
