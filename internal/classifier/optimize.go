package classifier

// This file implements the decision-tree optimizations Click applies to
// its classifiers (§3 mentions "an extensive set of decision tree
// optimizations, similar to BPF+'s"):
//
//   - trivial-node collapse: a node whose branches agree is removed;
//   - branch contraction: an edge into a node whose test is decided by
//     the fact established on that edge skips the node (this removes the
//     repeated protocol/header-length/fragment tests that rule lists
//     generate);
//   - common-subtree merging (hash-consing);
//   - dead-node elimination and topological renumbering, which also
//     canonicalizes programs so equivalent trees compare equal.

// Optimize rewrites the program in place until no rule applies.
func (pr *Program) Optimize() {
	pr.renumber()             // establish the forward-edge invariant first
	for i := 0; i < 64; i++ { // fixpoint bound; real programs settle in a few rounds
		changed := false
		if pr.collapseTrivial() {
			changed = true
		}
		if pr.contractBranches() {
			changed = true
		}
		if pr.mergeCommonSubtrees() {
			changed = true
		}
		pr.renumber()
		if !changed {
			break
		}
	}
	pr.computeSafeLength()
}

// resolve follows trivial replacements in a remap table.
func resolve(remap map[Target]Target, t Target) Target {
	for {
		n, ok := remap[t]
		if !ok {
			return t
		}
		t = n
	}
}

// collapseTrivial removes nodes whose yes and no branches agree.
func (pr *Program) collapseTrivial() bool {
	remap := map[Target]Target{}
	for i := range pr.Exprs {
		e := &pr.Exprs[i]
		if e.Yes == e.No {
			remap[Target(i)] = e.Yes
		}
	}
	if len(remap) == 0 {
		return false
	}
	pr.Entry = resolve(remap, pr.Entry)
	for i := range pr.Exprs {
		pr.Exprs[i].Yes = resolve(remap, pr.Exprs[i].Yes)
		pr.Exprs[i].No = resolve(remap, pr.Exprs[i].No)
	}
	return true
}

// contractBranches applies the edge facts. Taking a node's yes edge
// establishes (word(off) & mask) == value; taking the no edge
// establishes the negation. A successor testing the same word with a
// submask is decided by a yes-side fact; a successor repeating the
// identical test is decided by either fact.
func (pr *Program) contractBranches() bool {
	changed := false
	for i := range pr.Exprs {
		u := &pr.Exprs[i]
		// Yes side: fact (w & u.Mask) == u.Value.
		for !u.Yes.IsLeaf() {
			c := &pr.Exprs[u.Yes]
			if c.Offset != u.Offset || c.Mask&^u.Mask != 0 {
				break
			}
			if u.Value&c.Mask == c.Value {
				u.Yes = c.Yes
			} else {
				u.Yes = c.No
			}
			changed = true
		}
		// No side: fact (w & u.Mask) != u.Value. Only an identical
		// test is decided (it must also fail).
		for !u.No.IsLeaf() {
			c := &pr.Exprs[u.No]
			if c.Offset != u.Offset || c.Mask != u.Mask || c.Value != u.Value {
				break
			}
			u.No = c.No
			changed = true
		}
	}
	return changed
}

// mergeCommonSubtrees hash-conses identical nodes. Nodes are keyed by
// their full contents; since edges point to already-canonicalized
// targets when processed in reverse topological order, equal keys mean
// equal subtrees.
func (pr *Program) mergeCommonSubtrees() bool {
	type key struct {
		off  int32
		mask uint32
		val  uint32
		yes  Target
		no   Target
	}
	// Process in reverse index order; the builder and renumber keep
	// edges forward, so children have higher indices than parents.
	canon := map[key]Target{}
	remap := map[Target]Target{}
	changed := false
	for i := len(pr.Exprs) - 1; i >= 0; i-- {
		e := &pr.Exprs[i]
		e.Yes = resolve(remap, e.Yes)
		e.No = resolve(remap, e.No)
		k := key{e.Offset, e.Mask, e.Value, e.Yes, e.No}
		if prev, ok := canon[k]; ok {
			remap[Target(i)] = prev
			changed = true
		} else {
			canon[k] = Target(i)
		}
	}
	pr.Entry = resolve(remap, pr.Entry)
	for i := range pr.Exprs {
		pr.Exprs[i].Yes = resolve(remap, pr.Exprs[i].Yes)
		pr.Exprs[i].No = resolve(remap, pr.Exprs[i].No)
	}
	return changed
}

// renumber removes unreachable nodes and renumbers the rest in
// topological order from the entry, restoring the forward-edge
// invariant (DFS preorder would not: a diamond's far corner can receive
// a lower number than one of its predecessors).
func (pr *Program) renumber() {
	visited := make([]bool, len(pr.Exprs))
	var post []int
	var visit func(t Target)
	visit = func(t Target) {
		if t.IsLeaf() || visited[t] {
			return
		}
		visited[t] = true
		visit(pr.Exprs[t].Yes)
		visit(pr.Exprs[t].No)
		post = append(post, int(t))
	}
	visit(pr.Entry)
	// Reverse postorder is a topological order.
	order := make([]int, 0, len(post))
	newIdx := make([]Target, len(pr.Exprs))
	for i := range newIdx {
		newIdx[i] = -1
	}
	for i := len(post) - 1; i >= 0; i-- {
		newIdx[post[i]] = Target(len(order))
		order = append(order, post[i])
	}
	mapT := func(t Target) Target {
		if t.IsLeaf() {
			return t
		}
		return newIdx[t]
	}
	exprs := make([]Expr, len(order))
	for n, old := range order {
		e := pr.Exprs[old]
		e.Yes = mapT(e.Yes)
		e.No = mapT(e.No)
		exprs[n] = e
	}
	pr.Exprs = exprs
	pr.Entry = mapT(pr.Entry)
}

// Equal reports whether two optimized programs are structurally
// identical. click-fastclassifier generates one class per distinct
// decision tree; classifiers with identical trees share the class.
func (pr *Program) Equal(o *Program) bool {
	if pr.NOutputs != o.NOutputs || pr.Entry != o.Entry || len(pr.Exprs) != len(o.Exprs) {
		return false
	}
	for i := range pr.Exprs {
		if pr.Exprs[i] != o.Exprs[i] {
			return false
		}
	}
	return true
}
