package classifier

import "encoding/binary"

// Compiled is the click-fastclassifier form of a decision tree. Go has
// no runtime code generation, so "compiling" means lowering the tree
// into a memoized closure DAG with the offsets, masks, and comparison
// values captured as constants — no Expr array traversal and no
// decision-tree data to fetch, which is the optimization's point: the
// tree's memory traffic disappears and each step is a compare-and-jump
// (Figure 3b). The equivalent generated source text (see
// GenerateGoSource) is what the tool writes into the output archive.
type Compiled struct {
	prog      *Program
	checked   matchFn
	unchecked matchFn
}

// matchFn advances classification; steps counts nodes visited so the
// cost model can charge compiled execution per step.
type matchFn func(data []byte, steps int) (Target, int)

// Compile lowers a program. The program should already be optimized.
func Compile(pr *Program) *Compiled {
	c := &Compiled{prog: pr}
	c.unchecked = c.compileTarget(pr.Entry, false, map[Target]matchFn{})
	c.checked = c.compileTarget(pr.Entry, true, map[Target]matchFn{})
	return c
}

// Program returns the compiled program's tree.
func (c *Compiled) Program() *Program { return c.prog }

func (c *Compiled) compileTarget(t Target, checked bool, memo map[Target]matchFn) matchFn {
	if t.IsLeaf() {
		return func(_ []byte, steps int) (Target, int) { return t, steps }
	}
	if fn, ok := memo[t]; ok {
		return fn
	}
	// Reserve the memo slot with an indirect trampoline so shared
	// subtrees and the memoization of forward references interact
	// correctly (trees are acyclic, so the indirection resolves before
	// any call).
	var self matchFn
	memo[t] = func(d []byte, s int) (Target, int) { return self(d, s) }
	e := c.prog.Exprs[t]
	yes := c.compileTarget(e.Yes, checked, memo)
	no := c.compileTarget(e.No, checked, memo)
	off, mask, value := int(e.Offset), e.Mask, e.Value
	if checked {
		self = func(d []byte, steps int) (Target, int) {
			steps++
			var w uint32
			if off+4 <= len(d) {
				w = binary.BigEndian.Uint32(d[off:])
			} else {
				missing := off + 4 - len(d)
				if missing > 4 {
					missing = 4
				}
				var missMask uint32
				for i := 0; i < missing; i++ {
					missMask |= 0xff << (8 * i)
				}
				if mask&missMask != 0 {
					return no(d, steps)
				}
				w = loadWord(d, int32(off))
			}
			if w&mask == value {
				return yes(d, steps)
			}
			return no(d, steps)
		}
	} else {
		self = func(d []byte, steps int) (Target, int) {
			steps++
			if binary.BigEndian.Uint32(d[off:])&mask == value {
				return yes(d, steps)
			}
			return no(d, steps)
		}
	}
	memo[t] = self
	return self
}

// Match classifies data: output port, matched (false = drop), and the
// number of compiled steps executed.
func (c *Compiled) Match(data []byte) (port int, matched bool, steps int) {
	var t Target
	if len(data) >= c.prog.SafeLength {
		t, steps = c.unchecked(data, 0)
	} else {
		t, steps = c.checked(data, 0)
	}
	p, ok := t.Port()
	return p, ok, steps
}
