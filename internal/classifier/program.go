// Package classifier implements Click's packet classification engine:
// decision-tree programs built from Classifier patterns or from the
// tcpdump-like predicate language of IPClassifier and IPFilter, the
// decision-tree optimizations applied to them, a tree-walking
// interpreter (the generic Classifier's inner loop, Figure 3a), and the
// compiled form click-fastclassifier produces (Figure 3b): the tree
// flattened into specialized matchers with inlined constants and no
// decision-tree memory traffic.
package classifier

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Target encodes a decision-tree edge destination: a node index, an
// output-port leaf, or the drop leaf (unmatched packets).
type Target int32

// Drop is the leaf for packets matching no pattern.
const Drop Target = -1

// LeafPort returns the leaf target emitting to output port p.
func LeafPort(p int) Target { return Target(-p - 2) }

// IsLeaf reports whether the target terminates classification.
func (t Target) IsLeaf() bool { return t < 0 }

// Port returns the leaf's output port; ok is false for Drop.
func (t Target) Port() (int, bool) {
	if t == Drop {
		return 0, false
	}
	return int(-t - 2), true
}

func (t Target) String() string {
	if t == Drop {
		return "drop"
	}
	if p, ok := t.Port(); ok {
		return fmt.Sprintf("[%d]", p)
	}
	return fmt.Sprintf("step_%d", int(t))
}

// Expr is one decision-tree node: compare a masked 32-bit big-endian
// word of packet data against a value (Figure 3a's Expr).
type Expr struct {
	// Offset is the byte offset of the word; always a multiple of 4.
	Offset int32
	Mask   uint32
	Value  uint32
	Yes    Target
	No     Target
}

func (e Expr) String() string {
	return fmt.Sprintf("%d/%08x%%%08x yes->%s no->%s", e.Offset, e.Value, e.Mask, e.Yes, e.No)
}

// Program is a decision tree over packet data. Node 0 is the root; an
// empty program sends every packet to Entry (which must be a leaf).
type Program struct {
	Exprs []Expr
	// Entry is the starting target (node 0 for non-empty programs).
	Entry Target
	// NOutputs is the number of output ports the program can emit to.
	NOutputs int
	// SafeLength is the minimum packet length such that no test reads
	// beyond the data; shorter packets take the slow, checked path.
	SafeLength int
}

// loadWord reads the big-endian word at off, zero-padding beyond the
// end of data.
func loadWord(data []byte, off int32) uint32 {
	if int(off)+4 <= len(data) {
		return binary.BigEndian.Uint32(data[off:])
	}
	var w uint32
	for i := int32(0); i < 4; i++ {
		w <<= 8
		if int(off+i) < len(data) {
			w |= uint32(data[off+i])
		}
	}
	return w
}

// testExpr evaluates one node against packet data. A test whose masked
// bytes extend beyond the packet fails (short packets cannot match).
func testExpr(e *Expr, data []byte) bool {
	end := int(e.Offset) + 4
	if end > len(data) {
		// Fail if the mask covers any missing byte.
		missing := end - len(data)
		if missing > 4 {
			missing = 4
		}
		var missMask uint32
		for i := 0; i < missing; i++ {
			missMask |= 0xff << (8 * i)
		}
		if e.Mask&missMask != 0 {
			return false
		}
	}
	return loadWord(data, e.Offset)&e.Mask == e.Value
}

// Match classifies data, returning the output port, whether the packet
// matched (false means drop), and the number of tree nodes visited (the
// quantity the cost model charges).
func (pr *Program) Match(data []byte) (port int, matched bool, steps int) {
	t := pr.Entry
	for !t.IsLeaf() {
		e := &pr.Exprs[t]
		steps++
		if testExpr(e, data) {
			t = e.Yes
		} else {
			t = e.No
		}
	}
	p, ok := t.Port()
	return p, ok, steps
}

// computeSafeLength fills SafeLength from the node list.
func (pr *Program) computeSafeLength() {
	max := 0
	for _, e := range pr.Exprs {
		if end := int(e.Offset) + 4; end > max {
			max = end
		}
	}
	pr.SafeLength = max
}

// Depth returns the longest root-to-leaf path length.
func (pr *Program) Depth() int {
	memo := make([]int, len(pr.Exprs))
	for i := range memo {
		memo[i] = -1
	}
	var depth func(t Target) int
	depth = func(t Target) int {
		if t.IsLeaf() {
			return 0
		}
		if memo[t] >= 0 {
			return memo[t]
		}
		memo[t] = 0 // cycle guard; trees are acyclic by construction
		y, n := depth(pr.Exprs[t].Yes), depth(pr.Exprs[t].No)
		if n > y {
			y = n
		}
		memo[t] = y + 1
		return y + 1
	}
	return depth(pr.Entry)
}

const hexDigits = "0123456789abcdef"

// writeHex8 appends v as exactly eight lowercase hex digits (%08x).
func writeHex8(b *strings.Builder, v uint32) {
	for sh := 28; sh >= 0; sh -= 4 {
		b.WriteByte(hexDigits[(v>>uint(sh))&0xf])
	}
}

// writeTarget appends t in its textual form (drop, [port], step_N).
func writeTarget(b *strings.Builder, t Target) {
	if t == Drop {
		b.WriteString("drop")
		return
	}
	if p, ok := t.Port(); ok {
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(']')
		return
	}
	b.WriteString("step_")
	b.WriteString(strconv.Itoa(int(t)))
}

// String renders the program in the human-readable form the
// click-fastclassifier harness parses. The rendering is hand-rolled
// rather than Fprintf-formatted: programs are serialized on every
// archive write and intern-table lookup, which puts this on the
// control plane's admission path.
func (pr *Program) String() string {
	var b strings.Builder
	b.Grow(40 + 48*len(pr.Exprs))
	b.WriteString("noutputs ")
	b.WriteString(strconv.Itoa(pr.NOutputs))
	b.WriteString(" entry ")
	b.WriteString(strconv.Itoa(int(pr.Entry)))
	b.WriteString(" safe_length ")
	b.WriteString(strconv.Itoa(pr.SafeLength))
	b.WriteByte('\n')
	for i, e := range pr.Exprs {
		b.WriteString(strconv.Itoa(i))
		b.WriteString("  ")
		b.WriteString(strconv.Itoa(int(e.Offset)))
		b.WriteByte('/')
		writeHex8(&b, e.Value)
		b.WriteByte('%')
		writeHex8(&b, e.Mask)
		b.WriteString("  yes->")
		writeTarget(&b, e.Yes)
		b.WriteString("  no->")
		writeTarget(&b, e.No)
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseProgram parses Program.String output. click-fastclassifier runs
// the configuration's classifiers in a harness, has them print their
// decision trees in this form, and parses the result (§4) — so
// classifier syntax changes need be implemented exactly once.
func ParseProgram(s string) (*Program, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("classifier: empty program text")
	}
	pr := &Program{}
	hf := strings.Fields(lines[0])
	headerOK := len(hf) == 6 && hf[0] == "noutputs" && hf[2] == "entry" && hf[4] == "safe_length"
	if headerOK {
		var e1, e2, e3 error
		var entry int
		pr.NOutputs, e1 = strconv.Atoi(hf[1])
		entry, e2 = strconv.Atoi(hf[3])
		pr.SafeLength, e3 = strconv.Atoi(hf[5])
		pr.Entry = Target(entry)
		headerOK = e1 == nil && e2 == nil && e3 == nil
	}
	if !headerOK {
		return nil, fmt.Errorf("classifier: bad program header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Hand-rolled for the same reason String is: the format is
		// four whitespace-separated tokens, "idx off/val%mask
		// yes->T no->T", and Sscanf dominated admission profiles.
		f := strings.Fields(line)
		bad := func() (*Program, error) {
			return nil, fmt.Errorf("classifier: bad program line %q", line)
		}
		if len(f) != 4 || !strings.HasPrefix(f[2], "yes->") || !strings.HasPrefix(f[3], "no->") {
			return bad()
		}
		idx, err := strconv.Atoi(f[0])
		if err != nil {
			return bad()
		}
		slash := strings.IndexByte(f[1], '/')
		pct := strings.IndexByte(f[1], '%')
		if slash < 0 || pct < slash {
			return bad()
		}
		off, err := strconv.Atoi(f[1][:slash])
		if err != nil {
			return bad()
		}
		val, err := strconv.ParseUint(f[1][slash+1:pct], 16, 32)
		if err != nil {
			return bad()
		}
		mask, err := strconv.ParseUint(f[1][pct+1:], 16, 32)
		if err != nil {
			return bad()
		}
		yes, err := parseTarget(f[2][len("yes->"):])
		if err != nil {
			return nil, err
		}
		no, err := parseTarget(f[3][len("no->"):])
		if err != nil {
			return nil, err
		}
		if idx != len(pr.Exprs) {
			return nil, fmt.Errorf("classifier: out-of-order node %d", idx)
		}
		pr.Exprs = append(pr.Exprs, Expr{Offset: int32(off), Mask: uint32(mask), Value: uint32(val), Yes: yes, No: no})
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return pr, nil
}

func parseTarget(s string) (Target, error) {
	if s == "drop" {
		return Drop, nil
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		p, err := strconv.Atoi(s[1 : len(s)-1])
		if err != nil {
			return 0, fmt.Errorf("classifier: bad leaf %q", s)
		}
		return LeafPort(p), nil
	}
	if rest, ok := strings.CutPrefix(s, "step_"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil {
			return Target(n), nil
		}
	}
	return 0, fmt.Errorf("classifier: bad target %q", s)
}

// Validate checks structural invariants: forward-only edges (hence
// acyclicity), in-range node references and ports, and word-aligned
// offsets.
func (pr *Program) Validate() error {
	check := func(from int, t Target) error {
		if t.IsLeaf() {
			if p, ok := t.Port(); ok && (p < 0 || p >= pr.NOutputs) {
				return fmt.Errorf("classifier: leaf port %d out of range [0,%d)", p, pr.NOutputs)
			}
			return nil
		}
		if int(t) >= len(pr.Exprs) {
			return fmt.Errorf("classifier: node reference %d out of range", int(t))
		}
		if int(t) <= from {
			return fmt.Errorf("classifier: backward edge %d -> %d", from, int(t))
		}
		return nil
	}
	if err := check(-1, pr.Entry); err != nil {
		return err
	}
	for i, e := range pr.Exprs {
		if e.Offset%4 != 0 || e.Offset < 0 {
			return fmt.Errorf("classifier: node %d offset %d not word-aligned", i, e.Offset)
		}
		if e.Value&^e.Mask != 0 {
			return fmt.Errorf("classifier: node %d value %08x outside mask %08x", i, e.Value, e.Mask)
		}
		if err := check(i, e.Yes); err != nil {
			return err
		}
		if err := check(i, e.No); err != nil {
			return err
		}
	}
	return nil
}
