package classifier

import (
	"fmt"
	"math/rand"
	"testing"
)

// randFDDPacket builds a plausible IP-header-first packet with
// randomized classification-relevant fields (protocol, fragment bits,
// addresses, ports, TCP flags) and occasional short lengths so the
// checked paths run too.
func randFDDPacket(r *rand.Rand) []byte {
	n := 40 + r.Intn(24)
	switch r.Intn(8) {
	case 0:
		n = r.Intn(20) // truncated header
	case 1:
		n = 20 + r.Intn(16) // header only, short transport
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	if n > 0 {
		data[0] = 0x45 // usually IHL 5
		if r.Intn(4) == 0 {
			data[0] = byte(0x40 | (5 + r.Intn(3)))
		}
	}
	if n > 9 {
		data[9] = []byte{6, 17, 1, 6, 17, byte(r.Intn(256))}[r.Intn(6)]
	}
	if n > 7 {
		if r.Intn(2) == 0 {
			data[6] &= 0xc0 // not a fragment
			data[7] = 0
		}
	}
	if n > 15 && r.Intn(2) == 0 {
		copy(data[12:16], []byte{10, 0, byte(r.Intn(4)), byte(1 + r.Intn(4))})
	}
	if n > 23 && r.Intn(2) == 0 {
		port := []int{25, 53, 80, 1024 + r.Intn(64)}[r.Intn(4)]
		data[22], data[23] = byte(port>>8), byte(port)
	}
	return data
}

// fddRuleSet builds a deterministic rule list with overlapping
// prefixes, shadowed rules, negations, relational port ranges, and
// TCP-flag patterns — the shapes fusion must preserve.
func fddRuleSet(r *rand.Rand, n int) []string {
	hosts := []string{"10.0.0.2", "10.0.1.2", "10.0.2.3"}
	nets := []string{"10.0.0.0/8", "10.0.1.0/24", "172.16.0.0/12"}
	var rules []string
	for i := 0; i < n; i++ {
		action := []string{"allow", "deny"}[r.Intn(2)]
		var expr string
		switch r.Intn(8) {
		case 0:
			expr = fmt.Sprintf("src host %s && udp && dst port %d", hosts[r.Intn(len(hosts))], 1000+r.Intn(8))
		case 1:
			expr = fmt.Sprintf("dst net %s && tcp", nets[r.Intn(len(nets))])
		case 2:
			expr = fmt.Sprintf("tcp && dst port >= %d", 1024+r.Intn(1024))
		case 3:
			expr = fmt.Sprintf("udp && src port < %d", 1+r.Intn(2048))
		case 4:
			expr = fmt.Sprintf("not src net %s && ip frag", nets[r.Intn(len(nets))])
		case 5:
			expr = "tcp syn && not tcp ack"
		case 6:
			expr = fmt.Sprintf("ip proto %d", r.Intn(20))
		case 7:
			expr = fmt.Sprintf("host %s || (udp && dst port <= %d)", hosts[r.Intn(len(hosts))], 53+r.Intn(100))
		}
		rules = append(rules, action+" "+expr)
	}
	rules = append(rules, "allow udp")
	return rules
}

func TestCloneIndependent(t *testing.T) {
	pr, err := BuildIPFilterProgram([]string{"allow udp && dst port 53", "deny all"})
	if err != nil {
		t.Fatal(err)
	}
	c := pr.Clone()
	c.Exprs[0].Mask = 0xdeadbeef
	c.Exprs[0].Value = 0
	if pr.Exprs[0].Mask == 0xdeadbeef {
		t.Fatal("Clone shares the node slice with the original")
	}
}

// TestSpliceTwoStage composes an IPFilter with an IPClassifier the way
// the fuse pass does and checks the composition against running the
// stages in sequence, packet for packet.
func TestSpliceTwoStage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s1, err := BuildIPFilterProgram(fddRuleSet(r, 3+r.Intn(6)))
		if err != nil {
			t.Fatal(err)
		}
		s1.Optimize()
		s2, err := BuildIPClassifierProgram([]string{"udp", "tcp", "-"})
		if err != nil {
			t.Fatal(err)
		}
		s2.Optimize()

		// Filter output 0 continues into the classifier; classifier
		// ports are the composition's exit ports.
		composed := Splice(s1.Clone(), []*Program{s2.Clone()}, []int{-1})
		composed.NOutputs = s2.NOutputs
		composed.Optimize()
		if err := composed.Validate(); err != nil {
			t.Fatalf("composed program invalid: %v\n%s", err, composed)
		}

		for i := 0; i < 400; i++ {
			data := randFDDPacket(r)
			wantPort, wantOK := -1, false
			if p1, ok, _ := s1.Match(data); ok && p1 == 0 {
				wantPort, wantOK = -1, false
				if p2, ok2, _ := s2.Match(data); ok2 {
					wantPort, wantOK = p2, true
				}
			}
			gotPort, gotOK, _ := composed.Match(data)
			if gotOK != wantOK || (wantOK && gotPort != wantPort) {
				t.Fatalf("trial %d packet %d: composed (%d,%v), sequential (%d,%v)\n%x",
					trial, i, gotPort, gotOK, wantPort, wantOK, data)
			}
		}
	}
}

// TestSpecializeFDDEquivalence: the FDD rebuild must preserve the
// classification function exactly, across random rule sets and random
// (including short) packets.
func TestSpecializeFDDEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		pr, err := BuildIPFilterProgram(fddRuleSet(r, 2+r.Intn(12)))
		if err != nil {
			t.Fatal(err)
		}
		pr.Optimize()
		orig := pr.Clone()
		if !pr.SpecializeFDD(200000) {
			t.Fatalf("trial %d: FDD rebuild over budget on %d nodes", trial, len(orig.Exprs))
		}
		if err := pr.Validate(); err != nil {
			t.Fatalf("trial %d: FDD output invalid: %v\n%s", trial, err, pr)
		}
		for i := 0; i < 500; i++ {
			data := randFDDPacket(r)
			wp, wok, _ := orig.Match(data)
			gp, gok, _ := pr.Match(data)
			if wok != gok || (wok && wp != gp) {
				t.Fatalf("trial %d packet %d: FDD (%d,%v), tree (%d,%v)\n%x\ntree:\n%s\nfdd:\n%s",
					trial, i, gp, gok, wp, wok, data, orig, pr)
			}
		}
	}
}

// TestSpecializeFDDDropsCrossStageTests: after composing a filter that
// establishes "udp" with a classifier that re-tests udp/tcp, the FDD
// must decide the downstream tests from the upstream facts — a packet
// admitted by the filter must reach its exit without re-testing the
// protocol word, which shows up as fewer steps than the plain
// composition.
func TestSpecializeFDDDropsCrossStageTests(t *testing.T) {
	s1, err := BuildIPFilterProgram([]string{"allow udp && dst port 53", "deny all"})
	if err != nil {
		t.Fatal(err)
	}
	s1.Optimize()
	s2, err := BuildIPClassifierProgram([]string{"udp", "tcp", "-"})
	if err != nil {
		t.Fatal(err)
	}
	s2.Optimize()
	composed := Splice(s1.Clone(), []*Program{s2.Clone()}, []int{-1})
	composed.NOutputs = s2.NOutputs
	composed.Optimize()
	fdd := composed.Clone()
	if !fdd.SpecializeFDD(100000) {
		t.Fatal("over budget")
	}

	dns := make([]byte, 40)
	dns[0] = 0x45
	dns[9] = 17 // udp, not a fragment
	dns[22], dns[23] = 0, 53
	wp, wok, treeSteps := composed.Match(dns)
	gp, gok, fddSteps := fdd.Match(dns)
	if !wok || !gok || wp != 0 || gp != 0 {
		t.Fatalf("dns packet misrouted: tree (%d,%v), fdd (%d,%v)", wp, wok, gp, gok)
	}
	if fddSteps >= treeSteps {
		t.Fatalf("FDD did not shorten the admitted path: %d steps vs %d", fddSteps, treeSteps)
	}
}

// TestSpecializeFDDBudget: an exhausted budget must leave the program
// untouched and report false.
func TestSpecializeFDDBudget(t *testing.T) {
	pr, err := BuildIPFilterProgram(fddRuleSet(rand.New(rand.NewSource(3)), 10))
	if err != nil {
		t.Fatal(err)
	}
	pr.Optimize()
	orig := pr.Clone()
	if pr.SpecializeFDD(1) {
		t.Fatal("budget of 1 visit unexpectedly sufficed")
	}
	if !pr.Equal(orig) {
		t.Fatal("failed rebuild mutated the program")
	}
}

// TestSpecializeFDDSharesSubtrees: duplicate rule structure must
// hash-cons: a shadowed duplicate rule adds no nodes to the diagram.
func TestSpecializeFDDSharesSubtrees(t *testing.T) {
	base := []string{"allow src host 10.0.0.2 && udp && dst port 53", "deny all"}
	dup := []string{
		"allow src host 10.0.0.2 && udp && dst port 53",
		"allow src host 10.0.0.2 && udp && dst port 53", // shadowed
		"deny all",
	}
	one, err := BuildIPFilterProgram(base)
	if err != nil {
		t.Fatal(err)
	}
	one.Optimize()
	two, err := BuildIPFilterProgram(dup)
	if err != nil {
		t.Fatal(err)
	}
	two.Optimize()
	if !one.SpecializeFDD(100000) || !two.SpecializeFDD(100000) {
		t.Fatal("over budget")
	}
	if len(two.Exprs) != len(one.Exprs) {
		t.Fatalf("shadowed duplicate rule not eliminated: %d nodes vs %d", len(two.Exprs), len(one.Exprs))
	}
}
