package classifier

import (
	"fmt"
	"strconv"
	"strings"
)

// This file parses the generic Classifier's pattern syntax. Each
// configuration argument is one pattern, matched in order; a packet is
// emitted on the output port of the first pattern it matches, or
// dropped. A pattern is a whitespace-separated list of terms:
//
//	offset/hexvalue        bytes at offset equal hexvalue
//	offset/hexvalue%mask   masked comparison
//	!term                  negated term
//	-                      match every packet
//
// Hex digits may be '?' wildcards ("12/08??" matches any low byte).
// "Classifier(12/0800, -)" is Figure 3's example: IP packets to output
// 0, everything else to output 1.

type term struct {
	offset  int    // byte offset
	value   []byte // comparison bytes
	mask    []byte // comparison mask, same length
	negated bool
}

// parsePattern parses one pattern into terms; a nil slice means
// match-all ("-").
func parsePattern(pat string) ([]term, error) {
	pat = strings.TrimSpace(pat)
	if pat == "-" {
		return nil, nil
	}
	fields := strings.Fields(pat)
	if len(fields) == 0 {
		return nil, fmt.Errorf("classifier: empty pattern")
	}
	var terms []term
	for _, f := range fields {
		t, err := parseTerm(f)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return terms, nil
}

func parseTerm(f string) (term, error) {
	var t term
	s := f
	if strings.HasPrefix(s, "!") {
		t.negated = true
		s = s[1:]
	}
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return t, fmt.Errorf("classifier: term %q missing '/'", f)
	}
	off, err := strconv.Atoi(s[:slash])
	if err != nil || off < 0 {
		return t, fmt.Errorf("classifier: bad offset in term %q", f)
	}
	t.offset = off
	valStr := s[slash+1:]
	maskStr := ""
	if pct := strings.IndexByte(valStr, '%'); pct >= 0 {
		maskStr = valStr[pct+1:]
		valStr = valStr[:pct]
	}
	if len(valStr) == 0 || len(valStr)%2 != 0 {
		return t, fmt.Errorf("classifier: value in term %q must be a whole number of hex bytes", f)
	}
	t.value = make([]byte, len(valStr)/2)
	t.mask = make([]byte, len(valStr)/2)
	for i := 0; i < len(valStr); i += 2 {
		hi, hiMask, err := hexNibble(valStr[i])
		if err != nil {
			return t, fmt.Errorf("classifier: term %q: %v", f, err)
		}
		lo, loMask, err := hexNibble(valStr[i+1])
		if err != nil {
			return t, fmt.Errorf("classifier: term %q: %v", f, err)
		}
		t.value[i/2] = hi<<4 | lo
		t.mask[i/2] = hiMask<<4 | loMask
	}
	if maskStr != "" {
		if len(maskStr) != len(valStr) {
			return t, fmt.Errorf("classifier: mask length differs from value in term %q", f)
		}
		for i := 0; i < len(maskStr); i += 2 {
			hi, _, err := hexNibble(maskStr[i])
			if err != nil {
				return t, fmt.Errorf("classifier: term %q: %v", f, err)
			}
			lo, _, err := hexNibble(maskStr[i+1])
			if err != nil {
				return t, fmt.Errorf("classifier: term %q: %v", f, err)
			}
			t.mask[i/2] &= hi<<4 | lo
		}
	}
	for i := range t.value {
		t.value[i] &= t.mask[i]
	}
	return t, nil
}

func hexNibble(c byte) (val, mask byte, err error) {
	switch {
	case c == '?':
		return 0, 0, nil
	case c >= '0' && c <= '9':
		return c - '0', 0xf, nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, 0xf, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, 0xf, nil
	}
	return 0, 0, fmt.Errorf("bad hex digit %q", string(c))
}

// wordTests converts a term into word-aligned Expr comparisons (Offset,
// Mask, Value triples without edges).
func (t term) wordTests() []Expr {
	var out []Expr
	end := t.offset + len(t.value)
	for wordOff := t.offset &^ 3; wordOff < end; wordOff += 4 {
		var mask, val uint32
		nonzero := false
		for b := 0; b < 4; b++ {
			byteOff := wordOff + b
			mask <<= 8
			val <<= 8
			if byteOff >= t.offset && byteOff < end {
				m := t.mask[byteOff-t.offset]
				v := t.value[byteOff-t.offset]
				mask |= uint32(m)
				val |= uint32(v)
				if m != 0 {
					nonzero = true
				}
			}
		}
		if nonzero {
			out = append(out, Expr{Offset: int32(wordOff), Mask: mask, Value: val})
		}
	}
	return out
}

// BuildClassifierProgram compiles Classifier patterns into an
// unoptimized decision tree: each pattern's tests chain to its leaf,
// with every failure edge pointing at the next pattern's entry — the
// structure Click builds before optimization.
func BuildClassifierProgram(patterns []string) (*Program, error) {
	pr := &Program{NOutputs: len(patterns)}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("classifier: no patterns")
	}
	// Build from the last pattern backward so failure targets are
	// known; renumbering in Optimize (or normalize) restores forward
	// order.
	fail := Drop
	for i := len(patterns) - 1; i >= 0; i-- {
		terms, err := parsePattern(patterns[i])
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %v", i, err)
		}
		leaf := LeafPort(i)
		if terms == nil { // "-" matches everything
			fail = leaf
			continue
		}
		// Expand all terms into word tests, preserving order.
		var tests []Expr
		negated := []bool{}
		for _, t := range terms {
			wts := t.wordTests()
			if len(wts) == 0 {
				// A fully wildcarded term matches everything.
				continue
			}
			if t.negated && len(wts) > 1 {
				return nil, fmt.Errorf("pattern %d: negated term spans multiple words", i)
			}
			for _, wt := range wts {
				tests = append(tests, wt)
				negated = append(negated, t.negated)
			}
		}
		if len(tests) == 0 {
			fail = leaf
			continue
		}
		next := leaf
		for j := len(tests) - 1; j >= 0; j-- {
			e := tests[j]
			if negated[j] {
				e.Yes, e.No = fail, next
			} else {
				e.Yes, e.No = next, fail
			}
			pr.Exprs = append(pr.Exprs, e)
			next = Target(len(pr.Exprs) - 1)
		}
		fail = next
	}
	pr.Entry = fail
	pr.renumber()
	pr.computeSafeLength()
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return pr, nil
}
