package classifier

// This file implements the whole-path fusion machinery click-fuse rests
// on: composing a run of consecutive decision-tree programs into one
// program (Splice), and canonicalizing the composition into a
// forwarding decision diagram (SpecializeFDD) — a hash-consed DAG in
// which every test along a path is informative, in the style of the
// FDDs of "A Fast Compiler for NetKAT". Per-element trees repeat work
// across stage boundaries (the downstream classifier re-tests the
// protocol field the upstream filter already established); the
// path-sensitive rebuild propagates the facts each edge establishes and
// drops every test they decide, while hash-consing shares identical
// result subtrees so the diagram stays compact where trees blow up.

import "math/bits"

// Clone returns a deep copy of the program. Splice and SpecializeFDD
// mutate node lists in place; callers composing programs that are
// shared (a compiled classifier's tree, a registry spec's program) must
// clone first.
func (pr *Program) Clone() *Program {
	c := *pr
	c.Exprs = append([]Expr(nil), pr.Exprs...)
	return &c
}

// Splice composes a root program with per-port continuations: packets
// leaving root on port q continue into cont[q] when that is non-nil;
// otherwise they exit the composition on port exitPort[q] (or are
// dropped when exitPort[q] < 0). Leaf ports inside each continuation
// are already in the composed output space — the fuse pass builds
// bottom-up, so a continuation's leaves were remapped by its own Splice
// call. Drop leaves stay drops at every level. The caller sets NOutputs
// on the result (the composition does not know the final exit count)
// and should Optimize afterwards.
func Splice(root *Program, cont []*Program, exitPort []int) *Program {
	out := &Program{Entry: root.Entry}
	out.Exprs = append(out.Exprs, root.Exprs...)

	// Append each continuation's nodes, shifting its internal edges.
	base := make([]int, len(cont))
	for q, c := range cont {
		if c == nil {
			continue
		}
		base[q] = len(out.Exprs)
		for _, e := range c.Exprs {
			if !e.Yes.IsLeaf() {
				e.Yes += Target(base[q])
			}
			if !e.No.IsLeaf() {
				e.No += Target(base[q])
			}
			out.Exprs = append(out.Exprs, e)
		}
	}

	// Remap root leaves: port q becomes the continuation's entry or an
	// exit leaf. Only root's nodes (and the entry) carry leaves in
	// root's port space.
	mapLeaf := func(t Target) Target {
		q, ok := t.Port()
		if !ok {
			return Drop
		}
		if q < len(cont) && cont[q] != nil {
			et := cont[q].Entry
			if et.IsLeaf() {
				return et // already in composed space
			}
			return et + Target(base[q])
		}
		if q < len(exitPort) && exitPort[q] >= 0 {
			return LeafPort(exitPort[q])
		}
		return Drop
	}
	for i := range root.Exprs {
		e := &out.Exprs[i]
		if e.Yes.IsLeaf() {
			e.Yes = mapLeaf(e.Yes)
		}
		if e.No.IsLeaf() {
			e.No = mapLeaf(e.No)
		}
	}
	if out.Entry.IsLeaf() {
		out.Entry = mapLeaf(out.Entry)
	}
	out.computeSafeLength()
	return out
}

// fddFact is one assertion established along a path: the masked word at
// off compares eq (or not-eq) to value. Facts at one word offset form
// an immutable per-path chain (prevSame); osum/omix accumulate the
// chain's per-fact fingerprints commutatively, so the facts relevant to
// a subtree fingerprint in O(distinct offsets), not O(path length). A
// path never carries duplicate facts — a test whose fact is already on
// the path would have been decided, not re-tested.
type fddFact struct {
	off      int32
	mask     uint32
	value    uint32
	eq       bool
	hash     uint64
	osum     uint64
	omix     uint64
	prevSame *fddFact
}

func fddFactHash(off int32, mask, value uint32, eq bool) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(uint32(off)))
	mix(uint64(mask))
	mix(uint64(value))
	if eq {
		mix(1)
	} else {
		mix(2)
	}
	return h
}

// fddDecide reports whether the facts on a path decide test e, and the
// decision. facts is the path's fact chain for e's offset bucket (a
// shared overflow bucket may interleave other offsets, hence the off
// check). Equality facts at the same offset accumulate known bits; the
// test is false if its value disagrees with known bits, true if its
// mask is fully known and agrees. A negative fact falsifies an
// identical test, and also any test whose success would imply the
// negated fact (the negated mask is a submask and the values agree on
// it). All decisions remain sound for short packets: deciding true
// requires a successful covering test (so the data covers the bytes),
// and deciding false is safe because short-packet tests fail anyway.
func fddDecide(e *Expr, facts *fddFact) (known, value bool) {
	var km, kv uint32
	for f := facts; f != nil; f = f.prevSame {
		if f.off != e.Offset {
			continue
		}
		if f.eq {
			km |= f.mask
			kv |= f.value
			// Early exit the moment the accumulated bits decide the
			// test — newest facts come first, so a pinned field
			// resolves in one step even under a long chain of stale
			// negative facts.
			if common := km & e.Mask; kv&common != e.Value&common {
				return true, false
			}
			if e.Mask&^km == 0 {
				return true, true
			}
		} else if f.mask&^e.Mask == 0 && e.Value&f.mask == f.value {
			return true, false
		}
	}
	return false, false
}

// SpecializeFDD rebuilds the program path-sensitively into a decision
// diagram: it walks every path, propagates the fact each edge
// establishes, skips tests those facts decide, and hash-conses the
// rebuilt nodes so identical subtrees are shared. The rebuild
// enumerates fact contexts, which can blow up on adversarial inputs, so
// it is budgeted: when more than maxVisits node visits are needed the
// program is left untouched and the method reports false (the
// un-specialized program is equally correct, just larger).
//
// Decided tests are the common case on long rule chains (a context
// that pinned the source host falsifies every later rule about another
// host), so they take a fast path: no memo traffic, just a hop to the
// surviving branch. Memo entries exist only at expansion points, keyed
// by (node, commutative 128-bit fingerprint of the facts relevant to
// the node's subtree); relevant facts are found per word offset through
// cumulative chain fingerprints, so a key costs O(distinct offsets).
// Fingerprint collisions are astronomically unlikely and the
// differential harness guards the result regardless.
func (pr *Program) SpecializeFDD(maxVisits int) bool {
	if pr.Entry.IsLeaf() || len(pr.Exprs) == 0 {
		return true
	}

	// Assign field ids per word offset. Relevance filtering keys memo
	// entries only on facts a subtree can actually be decided by; since
	// fddDecide combines facts across different masks at one offset, the
	// unit of relevance is the offset, not the (offset, mask) pair. With
	// more than 63 distinct offsets the remainder share an overflow id
	// and are included conservatively.
	fieldID := map[int32]int{}
	idOf := func(off int32) int {
		if id, ok := fieldID[off]; ok {
			return id
		}
		id := len(fieldID)
		if id > 63 {
			id = 63
		}
		fieldID[off] = id
		return id
	}
	// Per-subtree field bitmaps: edges are forward, so children have
	// higher indices and are computed first.
	fids := make([]int, len(pr.Exprs))
	sub := make([]uint64, len(pr.Exprs))
	for i := len(pr.Exprs) - 1; i >= 0; i-- {
		e := &pr.Exprs[i]
		fids[i] = idOf(e.Offset)
		b := uint64(1) << uint(fids[i])
		if !e.Yes.IsLeaf() {
			b |= sub[e.Yes]
		}
		if !e.No.IsLeaf() {
			b |= sub[e.No]
		}
		sub[i] = b
	}

	// Rebuilt nodes, children-first (edges point to lower indices),
	// hash-consed so identical subtrees are one node.
	type nkey struct {
		off     int32
		mask    uint32
		value   uint32
		yes, no Target
	}
	var nodes []Expr
	hcons := map[nkey]Target{}
	mkNode := func(e *Expr, yes, no Target) Target {
		if yes == no {
			return yes
		}
		k := nkey{e.Offset, e.Mask, e.Value, yes, no}
		if t, ok := hcons[k]; ok {
			return t
		}
		nodes = append(nodes, Expr{Offset: e.Offset, Mask: e.Mask, Value: e.Value, Yes: yes, No: no})
		t := Target(len(nodes) - 1)
		hcons[k] = t
		return t
	}

	type mkey struct {
		t        Target
		sum, mix uint64
	}
	memo := map[mkey]Target{}
	visits := 0
	overBudget := false

	// heads[b] is the path's fact chain for offset bucket b; pushing a
	// fact copies the array (copy-on-write persistence), which happens
	// only at expansions, never on the decided fast path.
	type factHeads [64]*fddFact
	push := func(h *factHeads, b int, off int32, mask, value uint32, eq bool) *factHeads {
		nh := *h
		hash := fddFactHash(off, mask, value, eq)
		f := &fddFact{off: off, mask: mask, value: value, eq: eq, hash: hash, prevSame: nh[b]}
		f.osum, f.omix = hash, bits.RotateLeft64(hash, int(hash>>58))
		if p := nh[b]; p != nil {
			f.osum += p.osum
			f.omix ^= p.omix
		}
		nh[b] = f
		return &nh
	}

	var build func(t Target, heads *factHeads) Target
	build = func(t Target, heads *factHeads) Target {
		// Decided fast path: hop along the chain of tests the path's
		// facts already answer, without touching the memo.
		for !t.IsLeaf() && !overBudget {
			visits++
			if visits > maxVisits {
				overBudget = true
				return Drop
			}
			e := &pr.Exprs[t]
			known, v := fddDecide(e, heads[fids[t]])
			if !known {
				break
			}
			if v {
				t = e.Yes
			} else {
				t = e.No
			}
		}
		if t.IsLeaf() || overBudget {
			return t
		}
		// Expansion: fingerprint the facts relevant to this subtree.
		rel := sub[t]
		var sum, mix uint64
		for r := rel; r != 0; r &= r - 1 {
			if f := heads[bits.TrailingZeros64(r)]; f != nil {
				sum += f.osum
				mix ^= f.omix
			}
		}
		k := mkey{t, sum, mix}
		if r, ok := memo[k]; ok {
			return r
		}
		e := &pr.Exprs[t]
		yes := build(e.Yes, push(heads, fids[t], e.Offset, e.Mask, e.Value, true))
		no := build(e.No, push(heads, fids[t], e.Offset, e.Mask, e.Value, false))
		r := mkNode(e, yes, no)
		if !overBudget {
			memo[k] = r
		}
		return r
	}

	entry := build(pr.Entry, &factHeads{})
	if overBudget {
		return false
	}
	// Children were appended before parents; reversing restores the
	// forward-edge invariant, and renumber canonicalizes.
	n := len(nodes)
	remap := func(t Target) Target {
		if t.IsLeaf() {
			return t
		}
		return Target(n - 1 - int(t))
	}
	exprs := make([]Expr, n)
	for i, e := range nodes {
		e.Yes = remap(e.Yes)
		e.No = remap(e.No)
		exprs[n-1-i] = e
	}
	pr.Exprs = exprs
	pr.Entry = remap(entry)
	pr.renumber()
	pr.computeSafeLength()
	return true
}
