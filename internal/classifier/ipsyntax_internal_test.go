package classifier

import (
	"strings"
	"testing"
)

// unknownExprNode is a boolExpr kind the compiler has never seen —
// standing in for a future parser extension that forgot to teach
// compileBool its node type.
type unknownExprNode struct{}

func (unknownExprNode) isBoolExpr() {}

// compileBool must reject an unknown expression node with an error, not
// a panic: the expression ultimately comes from user configuration, so
// a gap between parser and compiler must not crash the tools.
func TestCompileBoolUnknownNode(t *testing.T) {
	pr := &Program{NOutputs: 1}
	if _, err := compileBool(pr, unknownExprNode{}, LeafPort(0), Drop); err == nil {
		t.Fatal("compileBool(unknown node) returned nil error")
	}

	// The error must surface through both program builders when an
	// unknown node hides inside a larger expression.
	pr2 := &Program{NOutputs: 1}
	bad := andExprNode{l: constExprNode{true}, r: unknownExprNode{}}
	if _, err := compileBool(pr2, bad, LeafPort(0), Drop); err == nil {
		t.Fatal("compileBool(and(const, unknown)) returned nil error")
	}
	pr3 := &Program{NOutputs: 1}
	bad2 := orExprNode{l: unknownExprNode{}, r: constExprNode{false}}
	if _, err := compileBool(pr3, bad2, LeafPort(0), Drop); err == nil {
		t.Fatal("compileBool(or(unknown, const)) returned nil error")
	}
	pr4 := &Program{NOutputs: 1}
	if _, err := compileBool(pr4, notExprNode{unknownExprNode{}}, LeafPort(0), Drop); err == nil {
		t.Fatal("compileBool(not(unknown)) returned nil error")
	}
}

// Well-formed expressions still compile after the error-path rework.
func TestBuildIPClassifierProgramStillCompiles(t *testing.T) {
	pr, err := BuildIPClassifierProgram([]string{"tcp dst port 80", "udp", "-"})
	if err != nil {
		t.Fatalf("BuildIPClassifierProgram: %v", err)
	}
	if pr.NOutputs != 3 {
		t.Fatalf("NOutputs = %d, want 3", pr.NOutputs)
	}
	if _, err := BuildIPClassifierProgram([]string{"tcp dst prot 80"}); err == nil {
		t.Fatal("BuildIPClassifierProgram accepted a malformed expression")
	} else if !strings.Contains(err.Error(), "expression 0") {
		t.Fatalf("error %q does not name the failing expression", err)
	}
}
