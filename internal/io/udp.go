package io

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// udpRingDepth is the receive ring between the socket pump goroutine
// and the router's task loop. Frames arriving while the ring is full
// are dropped and counted, like a NIC FIFO overflow.
const udpRingDepth = 1024

// UDP is a Backend that carries frames as UDP payloads: the device
// binds a local socket, received datagrams become received frames, and
// sent frames are datagrams addressed to a fixed peer. Two routers in
// separate processes (or one process, or a router and a test harness)
// exchange real packets over localhost with no privileges.
//
// A pump goroutine blocks in ReadFromUDP and feeds a bounded ring the
// non-blocking Recv drains, so the router's cooperative task loop
// never blocks in a syscall.
type UDP struct {
	localSpec string
	peerSpec  string

	conn *net.UDPConn
	peer *net.UDPAddr
	ring chan []byte
	wg   sync.WaitGroup

	// RxDropped counts datagrams discarded because the receive ring
	// was full; PeerLess counts frames sent with no peer configured.
	RxDropped int64
	PeerLess  int64
}

// NewUDP creates a UDP backend bound to the local address (host:port;
// an empty host binds loopback-reachable wildcard, port 0 picks a free
// port) sending to peer (empty for a receive-only device).
func NewUDP(local, peer string) *UDP {
	return &UDP{localSpec: local, peerSpec: peer, ring: make(chan []byte, udpRingDepth)}
}

// Open implements Backend: binds the socket and starts the pump.
func (u *UDP) Open() error {
	laddr, err := net.ResolveUDPAddr("udp", u.localSpec)
	if err != nil {
		return fmt.Errorf("udp backend: local %q: %w", u.localSpec, err)
	}
	if u.peerSpec != "" {
		u.peer, err = net.ResolveUDPAddr("udp", u.peerSpec)
		if err != nil {
			return fmt.Errorf("udp backend: peer %q: %w", u.peerSpec, err)
		}
	}
	u.conn, err = net.ListenUDP("udp", laddr)
	if err != nil {
		return fmt.Errorf("udp backend: %w", err)
	}
	u.wg.Add(1)
	go u.pump()
	return nil
}

// LocalAddr returns the bound address (useful with port 0). Only valid
// after Open.
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// SetPeer (re)targets the send side; it must be called before the
// router runs. It lets loopback rigs bind every socket on port 0
// first, then point the devices at each other.
func (u *UDP) SetPeer(peer string) error {
	addr, err := net.ResolveUDPAddr("udp", peer)
	if err != nil {
		return fmt.Errorf("udp backend: peer %q: %w", peer, err)
	}
	u.peer = addr
	return nil
}

// pump blocks in the kernel receive path and fills the ring.
func (u *UDP) pump() {
	defer u.wg.Done()
	for {
		buf := make([]byte, DefaultSnapLen+1)
		n, _, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		select {
		case u.ring <- buf[:n]:
		default:
			atomic.AddInt64(&u.RxDropped, 1)
		}
	}
}

// Recv implements Backend: drain up to len(buf) pending frames without
// blocking.
func (u *UDP) Recv(buf [][]byte) (int, error) {
	n := 0
	for n < len(buf) {
		select {
		case f := <-u.ring:
			buf[n] = f
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Send implements Backend: each frame becomes one datagram to the
// peer.
func (u *UDP) Send(frames [][]byte) (int, error) {
	if u.peer == nil {
		atomic.AddInt64(&u.PeerLess, int64(len(frames)))
		return len(frames), nil
	}
	for i, f := range frames {
		if _, err := u.conn.WriteToUDP(f, u.peer); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// Close implements Backend: closes the socket and reaps the pump.
func (u *UDP) Close() error {
	var err error
	if u.conn != nil {
		err = u.conn.Close()
		u.wg.Wait()
	}
	return err
}
