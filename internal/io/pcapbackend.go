package io

import (
	stdio "io"
	"os"
	"sync"
)

// CaptureSink serializes transmitted frames from one or more devices
// into a single pcap stream. Timestamps are a deterministic counter
// (one microsecond per frame), not wall-clock time, so the same run
// always produces byte-identical capture files — the property the
// replay difftest corpus asserts on.
type CaptureSink struct {
	mu     sync.Mutex
	w      *Writer
	closer stdio.Closer
	n      int64
	err    error
}

// NewCaptureSink writes a pcap header to w and returns a sink. A zero
// snaplen uses DefaultSnapLen.
func NewCaptureSink(w stdio.Writer, snaplen uint32) (*CaptureSink, error) {
	wr, err := NewWriter(w, snaplen)
	if err != nil {
		return nil, err
	}
	return &CaptureSink{w: wr}, nil
}

// CreateCaptureFile creates (truncating) a capture file and returns a
// sink whose Close flushes and closes it.
func CreateCaptureFile(path string) (*CaptureSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s, err := NewCaptureSink(f, 0)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// WriteFrame appends one frame with the next deterministic timestamp.
func (s *CaptureSink) WriteFrame(f []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.WriteRecord(Record{TSNanos: s.n * 1e3, Data: f})
	s.n++
	return s.err
}

// Frames returns how many frames the sink captured.
func (s *CaptureSink) Frames() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close closes the underlying file, if the sink owns one.
func (s *CaptureSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.closer = nil
	}
	return s.err
}

// Pcap is a Backend that replays a recorded frame sequence in and
// captures transmitted frames out. Either side may be absent: a nil
// source receives nothing (Recv reports EOF immediately), a nil sink
// accepts and discards transmissions. Sinks may be shared between
// devices (one aggregate capture) or per-device.
type Pcap struct {
	src  []Record
	pos  int
	sink *CaptureSink
}

// NewPcap builds a backend over an in-memory record sequence and an
// optional capture sink.
func NewPcap(src []Record, sink *CaptureSink) *Pcap {
	return &Pcap{src: src, sink: sink}
}

// OpenPcapFile builds a backend replaying the capture at path.
func OpenPcapFile(path string, sink *CaptureSink) (*Pcap, error) {
	recs, err := ReadPcapFile(path)
	if err != nil {
		return nil, err
	}
	return NewPcap(recs, sink), nil
}

// Open implements Backend.
func (b *Pcap) Open() error { return nil }

// Recv implements Backend: deliver the next frames of the replay; at
// the end of the recording it returns 0, io.EOF.
func (b *Pcap) Recv(buf [][]byte) (int, error) {
	n := 0
	for n < len(buf) && b.pos < len(b.src) {
		buf[n] = b.src[b.pos].Data
		b.pos++
		n++
	}
	if n == 0 {
		return 0, stdio.EOF
	}
	return n, nil
}

// Send implements Backend: append frames to the capture.
func (b *Pcap) Send(frames [][]byte) (int, error) {
	if b.sink == nil {
		return len(frames), nil
	}
	for i, f := range frames {
		if err := b.sink.WriteFrame(f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// Close implements Backend. Shared sinks are closed by their owner,
// not per device.
func (b *Pcap) Close() error { return nil }

var (
	_ Backend = (*Pcap)(nil)
	_ Backend = (*UDP)(nil)
)
