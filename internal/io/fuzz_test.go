package io

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzPcap feeds arbitrary bytes to the capture reader. The invariants:
// the reader never panics and never allocates unboundedly (truncated
// records, bad magic, and snap-length overflow must surface as errors),
// and whatever records it does accept survive a write-reread round trip
// bit-for-bit. This is the parser the replay difftest corpus and the
// -pcap-in flag trust with files from the outside world.
func FuzzPcap(f *testing.F) {
	// A small valid nanosecond capture.
	var valid bytes.Buffer
	wr, err := NewWriter(&valid, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i, frame := range testFrames(3) {
		if err := wr.WriteRecord(Record{TSNanos: int64(i) * 1e6, Data: frame}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:30])                  // truncated mid-record
	f.Add([]byte("not a capture at all"))      // bad magic
	f.Add(buildPcapng())                       // pcapng section
	le := binary.LittleEndian
	overflow := make([]byte, 40)
	le.PutUint32(overflow[0:4], magicMicros)
	le.PutUint32(overflow[16:20], 0xffffffff) // huge declared snaplen
	le.PutUint32(overflow[20:24], linkEthernet)
	le.PutUint32(overflow[32:36], 1<<30) // giant record
	f.Add(overflow)

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we got here
		}
		var recs []Record
		for len(recs) < 1024 {
			rec, err := rd.Next()
			if err != nil {
				break // io.EOF or a malformation error; either ends cleanly
			}
			if len(rec.Data) > maxCaptureLen {
				t.Fatalf("reader accepted a %d-byte record beyond the cap", len(rec.Data))
			}
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			return
		}
		// Round trip: accepted records must re-encode and re-read
		// identically (data, original length, and — because the writer
		// is nanosecond-precision — timestamps).
		var out bytes.Buffer
		w, err := NewWriter(&out, maxCaptureLen)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.WriteRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		again, err := ReadPcap(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip of accepted records failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip returned %d records, wrote %d", len(again), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(again[i].Data, recs[i].Data) {
				t.Fatalf("record %d data changed across round trip", i)
			}
			if again[i].OrigLen != recs[i].OrigLen {
				t.Fatalf("record %d orig len %d → %d across round trip", i, recs[i].OrigLen, again[i].OrigLen)
			}
			want := clampTS(recs[i].TSNanos)
			if again[i].TSNanos != want {
				t.Fatalf("record %d ts %d → %d across round trip", i, want, again[i].TSNanos)
			}
		}
	})
}
