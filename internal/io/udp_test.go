package io

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/packet"
)

func TestUDPBackendEcho(t *testing.T) {
	be := NewUDP("127.0.0.1:0", "")
	if err := be.Open(); err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	// A plain socket plays the peer.
	peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := be.SetPeer(peer.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	// Peer → backend.
	want := []byte{1, 2, 3, 4, 5}
	if _, err := peer.WriteToUDP(want, be.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	buf := make([][]byte, 4)
	deadline := time.Now().Add(5 * time.Second)
	var got []byte
	for time.Now().Before(deadline) {
		n, err := be.Recv(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			got = buf[0]
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("received %x, want %x", got, want)
	}
	// Backend → peer.
	if _, err := be.Send([][]byte{{9, 8, 7}}); err != nil {
		t.Fatal(err)
	}
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	rbuf := make([]byte, 64)
	n, _, err := peer.ReadFromUDP(rbuf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rbuf[:n], []byte{9, 8, 7}) {
		t.Fatalf("peer received %x", rbuf[:n])
	}
}

// loopbackRouter is one in-process router forwarding eth0 → eth1 over
// UDP backends, run on its own goroutine.
type loopbackRouter struct {
	rt   *core.Router
	rx   *UDP
	tx   *UDP
	stop atomic.Bool
	wg   sync.WaitGroup
}

const loopbackConfig = `
pd :: PollDevice(eth0);
cnt :: Counter;
q :: Queue(64);
td :: ToDevice(eth1);
pd -> cnt -> q -> td;
`

func newLoopbackRouter(t *testing.T) *loopbackRouter {
	t.Helper()
	lr := &loopbackRouter{
		rx: NewUDP("127.0.0.1:0", ""),
		tx: NewUDP("127.0.0.1:0", ""),
	}
	if err := lr.rx.Open(); err != nil {
		t.Fatal(err)
	}
	if err := lr.tx.Open(); err != nil {
		t.Fatal(err)
	}
	env := map[string]interface{}{
		"device:eth0": NewDevice("eth0", lr.rx),
		"device:eth1": NewDevice("eth1", lr.tx),
	}
	rt, err := core.BuildFromText(loopbackConfig, "loopback", elements.NewRegistry(), core.BuildOptions{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	lr.rt = rt
	return lr
}

// run spins the task loop until stopped, sleeping briefly when idle so
// the socket pump can make progress.
func (lr *loopbackRouter) run() {
	lr.wg.Add(1)
	go func() {
		defer lr.wg.Done()
		for !lr.stop.Load() {
			if !lr.rt.RunTaskRound() {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
}

func (lr *loopbackRouter) halt() {
	lr.stop.Store(true)
	lr.wg.Wait()
	lr.rx.Close()
	lr.tx.Close()
}

// TestUDPLoopbackTwoRouters runs two routers in one process connected
// over real localhost sockets — harness → A.eth0, A.eth1 → B.eth0,
// B.eth1 → collector — and asserts every injected frame is delivered
// intact and that the telemetry of both routers conserves packets
// (packets_in == packets_out + drops at every interior element).
func TestUDPLoopbackTwoRouters(t *testing.T) {
	a := newLoopbackRouter(t)
	b := newLoopbackRouter(t)

	collector, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()
	if err := a.tx.SetPeer(b.rx.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.tx.SetPeer(collector.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}

	a.run()
	b.run()

	injector, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer injector.Close()

	const n = 40
	sent := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		payload := make([]byte, 14)
		payload[0], payload[1] = byte(i>>8), byte(i)
		p := packet.BuildUDP4(
			packet.EtherAddr{0, 0, 0xc0, 0, 0, 2}, packet.EtherAddr{0, 0, 0xc0, 0, 0, 1},
			packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 1, 2),
			uint16(1024+i), 1234, payload)
		frame := append([]byte(nil), p.Data()...)
		p.Kill()
		sent[string(frame)] = true
		if _, err := injector.WriteToUDP(frame, a.rx.LocalAddr().(*net.UDPAddr)); err != nil {
			t.Fatal(err)
		}
	}

	// Collect until every frame arrives or the deadline passes. UDP on
	// loopback does not reorder in practice, but delivery is asserted
	// as a set to keep the test honest about the transport.
	got := 0
	collector.SetReadDeadline(time.Now().Add(10 * time.Second))
	rbuf := make([]byte, 65536)
	for got < n {
		rn, _, err := collector.ReadFromUDP(rbuf)
		if err != nil {
			t.Fatalf("collector: %v after %d/%d frames", err, got, n)
		}
		frame := string(rbuf[:rn])
		if !sent[frame] {
			t.Fatalf("collector received a frame that was never sent: %x", rbuf[:rn])
		}
		delete(sent, frame)
		got++
	}

	a.halt()
	b.halt()

	for label, lr := range map[string]*loopbackRouter{"A": a, "B": b} {
		for _, r := range lr.rt.StatsReport() {
			switch r.Class {
			case "PollDevice":
				if r.PacketsOut != n {
					t.Errorf("router %s: %s pushed %d packets, want %d", label, r.Name, r.PacketsOut, n)
				}
			default:
				if r.PacketsIn != r.PacketsOut+r.Drops {
					t.Errorf("router %s: %s (%s) violates conservation: in=%d out=%d drops=%d",
						label, r.Name, r.Class, r.PacketsIn, r.PacketsOut, r.Drops)
				}
			}
		}
		for name, dev := range map[string]*UDP{"rx": lr.rx, "tx": lr.tx} {
			if d := atomic.LoadInt64(&dev.RxDropped); d != 0 {
				t.Errorf("router %s %s backend dropped %d frames in the ring", label, name, d)
			}
		}
		if err := checkHandlerConservation(lr.rt); err != nil {
			t.Errorf("router %s: %v", label, err)
		}
	}
}

// checkHandlerConservation reads the implicit telemetry handlers the
// way an external monitor would and re-asserts conservation from the
// handler surface.
func checkHandlerConservation(rt *core.Router) error {
	for _, name := range []string{"cnt", "q"} {
		read := func(h string) (string, error) { return rt.ReadHandler(name + "." + h) }
		in, err := read("packets_in")
		if err != nil {
			return err
		}
		out, err := read("packets_out")
		if err != nil {
			return err
		}
		drops, err := read("drops")
		if err != nil {
			return err
		}
		var vin, vout, vdrops int64
		fmt.Sscan(in, &vin)
		fmt.Sscan(out, &vout)
		fmt.Sscan(drops, &vdrops)
		if vin != vout+vdrops {
			return fmt.Errorf("%s handlers violate conservation: in=%d out=%d drops=%d", name, vin, vout, vdrops)
		}
	}
	return nil
}
