package io

import (
	"bytes"
	"encoding/binary"
	stdio "io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/packet"
)

func testFrames(n int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		payload := make([]byte, 10+i%40)
		payload[0] = byte(i)
		p := packet.BuildUDP4(
			packet.EtherAddr{0, 0, 0xc0, 0, 0, 2}, packet.EtherAddr{0, 0, 0xc0, 0, 0, 1},
			packet.MakeIP4(10, 0, 0, 2), packet.MakeIP4(10, 0, 1, 2),
			uint16(1024+i), uint16(1+i%3), payload)
		frames[i] = append([]byte(nil), p.Data()...)
		p.Kill()
	}
	return frames
}

func TestPcapRoundTrip(t *testing.T) {
	frames := testFrames(25)
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if err := wr.WriteRecord(Record{TSNanos: int64(i) * 1_000_000, Data: f}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("read %d records, wrote %d", len(recs), len(frames))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Data, frames[i]) {
			t.Errorf("record %d data differs", i)
		}
		if rec.TSNanos != int64(i)*1_000_000 {
			t.Errorf("record %d ts %d, want %d", i, rec.TSNanos, int64(i)*1_000_000)
		}
		if rec.OrigLen != len(frames[i]) {
			t.Errorf("record %d orig len %d, want %d", i, rec.OrigLen, len(frames[i]))
		}
	}
}

func TestPcapSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	wr, err := NewWriter(&buf, 32)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 100)
	for i := range frame {
		frame[i] = byte(i)
	}
	if err := wr.WriteRecord(Record{Data: frame}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Data) != 32 || recs[0].OrigLen != 100 {
		t.Fatalf("got %+v", recs)
	}
}

// TestPcapBigEndianMicros exercises the byte-order and precision
// detection on a hand-built big-endian microsecond capture.
func TestPcapBigEndianMicros(t *testing.T) {
	var buf bytes.Buffer
	be := binary.BigEndian
	head := make([]byte, 24)
	be.PutUint32(head[0:4], magicMicros)
	be.PutUint16(head[4:6], 2)
	be.PutUint16(head[6:8], 4)
	be.PutUint32(head[16:20], 65535)
	be.PutUint32(head[20:24], linkEthernet)
	buf.Write(head)
	rec := make([]byte, 16)
	be.PutUint32(rec[0:4], 7)  // sec
	be.PutUint32(rec[4:8], 13) // usec
	be.PutUint32(rec[8:12], 4)
	be.PutUint32(rec[12:16], 4)
	buf.Write(rec)
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	recs, err := ReadPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if want := int64(7*1e9 + 13*1e3); recs[0].TSNanos != want {
		t.Errorf("ts %d, want %d", recs[0].TSNanos, want)
	}
	if !bytes.Equal(recs[0].Data, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("data %x", recs[0].Data)
	}
}

// buildPcapng assembles a minimal little-endian pcapng stream: SHB,
// IDB, one EPB, one SPB.
func buildPcapng() []byte {
	le := binary.LittleEndian
	var buf bytes.Buffer
	block := func(btype uint32, body []byte) {
		for len(body)%4 != 0 {
			body = append(body, 0)
		}
		total := uint32(len(body) + 12)
		var w [8]byte
		le.PutUint32(w[0:4], btype)
		le.PutUint32(w[4:8], total)
		buf.Write(w[:])
		buf.Write(body)
		var tr [4]byte
		le.PutUint32(tr[:], total)
		buf.Write(tr[:])
	}
	shb := make([]byte, 16)
	le.PutUint32(shb[0:4], ngByteOrder)
	le.PutUint16(shb[4:6], 1) // version 1.0
	le.PutUint64(shb[8:16], ^uint64(0))
	block(ngBlockSHB, shb)
	idb := make([]byte, 8)
	le.PutUint16(idb[0:2], linkEthernet)
	le.PutUint32(idb[4:8], 64)
	block(ngBlockIDB, idb)
	epb := make([]byte, 20, 26)
	le.PutUint32(epb[4:8], 0)    // ts high
	le.PutUint32(epb[8:12], 42)  // ts low (microseconds)
	le.PutUint32(epb[12:16], 6)  // captured
	le.PutUint32(epb[16:20], 60) // original
	epb = append(epb, []byte{1, 2, 3, 4, 5, 6}...)
	block(ngBlockEPB, epb)
	spb := make([]byte, 4, 9)
	le.PutUint32(spb[0:4], 5)
	spb = append(spb, []byte{9, 8, 7, 6, 5}...)
	block(ngBlockSPB, spb)
	return buf.Bytes()
}

func TestPcapngRead(t *testing.T) {
	recs, err := ReadPcap(bytes.NewReader(buildPcapng()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if !bytes.Equal(recs[0].Data, []byte{1, 2, 3, 4, 5, 6}) || recs[0].OrigLen != 60 {
		t.Errorf("EPB record: %+v", recs[0])
	}
	if recs[0].TSNanos != 42_000 {
		t.Errorf("EPB ts %d, want 42000", recs[0].TSNanos)
	}
	if !bytes.Equal(recs[1].Data, []byte{9, 8, 7, 6, 5}) || recs[1].OrigLen != 5 {
		t.Errorf("SPB record: %+v", recs[1])
	}
}

// TestPcapMalformed: every malformation errors; none may panic.
func TestPcapMalformed(t *testing.T) {
	le := binary.LittleEndian
	validHeader := func(snaplen uint32) []byte {
		h := make([]byte, 24)
		le.PutUint32(h[0:4], magicNanos)
		le.PutUint16(h[4:6], 2)
		le.PutUint16(h[6:8], 4)
		le.PutUint32(h[16:20], snaplen)
		le.PutUint32(h[20:24], linkEthernet)
		return h
	}
	record := func(incl, orig uint32, n int) []byte {
		r := make([]byte, 16+n)
		le.PutUint32(r[8:12], incl)
		le.PutUint32(r[12:16], orig)
		return r
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated file header"},
		{"bad magic", []byte("PK\x03\x04more-bytes-here-to-fill-the-header!!"), "bad magic"},
		{"short header", validHeader(0)[:20], "truncated file header"},
		{"non-ethernet", func() []byte {
			h := validHeader(0)
			le.PutUint32(h[20:24], 101) // LINKTYPE_RAW
			return h
		}(), "unsupported link type"},
		{"truncated record header", append(validHeader(0), 1, 2, 3), "truncated record header"},
		{"truncated record body", append(validHeader(0), record(10, 10, 4)...), "truncated record body"},
		{"snaplen overflow", append(validHeader(64), record(128, 128, 128)...), "exceeds snap length"},
		{"giant record", append(validHeader(0xffffffff), record(1<<30, 1<<30, 0)...), "exceeds snap length"},
		{"orig below captured", append(validHeader(0), record(8, 2, 8)...), "below captured length"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadPcap(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("no error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPcapngMalformed(t *testing.T) {
	good := buildPcapng()
	le := binary.LittleEndian
	t.Run("trailer mismatch", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		// Corrupt the last 4 bytes (final block's trailing length).
		le.PutUint32(bad[len(bad)-4:], 0xffff)
		if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
			t.Error("no error for corrupt trailer")
		}
	})
	t.Run("truncated block", func(t *testing.T) {
		if _, err := ReadPcap(bytes.NewReader(good[:len(good)-6])); err == nil {
			t.Error("no error for truncated block")
		}
	})
	t.Run("bad byte order magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		le.PutUint32(bad[8:12], 0x12345678)
		if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
			t.Error("no error for bad byte-order magic")
		}
	})
}

func TestPcapFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.pcap")
	sink, err := CreateCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(10)
	for _, f := range frames {
		if err := sink.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPcapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("read %d records, wrote %d", len(recs), len(frames))
	}
	for i := range recs {
		if !bytes.Equal(recs[i].Data, frames[i]) {
			t.Errorf("record %d differs", i)
		}
		if recs[i].TSNanos != int64(i)*1e3 {
			t.Errorf("record %d ts %d, want deterministic counter %d", i, recs[i].TSNanos, int64(i)*1e3)
		}
	}
}

// TestPcapBackendReplay drives the Backend surface directly: replay
// in, capture out, EOF after the last frame.
func TestPcapBackendReplay(t *testing.T) {
	frames := testFrames(7)
	recs := make([]Record, len(frames))
	for i, f := range frames {
		recs[i] = Record{Data: f}
	}
	var capture bytes.Buffer
	sink, err := NewCaptureSink(&capture, 0)
	if err != nil {
		t.Fatal(err)
	}
	be := NewPcap(recs, sink)
	dev, err := OpenDevice("eth0", be)
	if err != nil {
		t.Fatal(err)
	}
	// Drain via the scalar Device surface, echoing each packet back out.
	n := 0
	for {
		p := dev.RxDequeue()
		if p == nil {
			break
		}
		if !bytes.Equal(p.Data(), frames[n]) {
			t.Fatalf("frame %d differs", n)
		}
		dev.TxEnqueue(p)
		n++
	}
	if n != len(frames) {
		t.Fatalf("received %d frames, want %d", n, len(frames))
	}
	if !dev.EOF() {
		t.Error("device not at EOF after replay drained")
	}
	out, err := ReadPcap(bytes.NewReader(capture.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames) {
		t.Fatalf("captured %d frames, want %d", len(out), len(frames))
	}
	for i := range out {
		if !bytes.Equal(out[i].Data, frames[i]) {
			t.Errorf("captured frame %d differs", i)
		}
	}
	if dev.Rx != int64(len(frames)) || dev.Tx != int64(len(frames)) {
		t.Errorf("counters rx=%d tx=%d, want %d each", dev.Rx, dev.Tx, len(frames))
	}
}

// TestPcapBackendBatch drains a replay through the batched surface.
func TestPcapBackendBatch(t *testing.T) {
	frames := testFrames(10)
	recs := make([]Record, len(frames))
	for i, f := range frames {
		recs[i] = Record{Data: f}
	}
	dev := NewDevice("eth0", NewPcap(recs, nil))
	buf := make([]*packet.Packet, 4)
	got := 0
	for {
		n := dev.RxDequeueBatch(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(buf[i].Data(), frames[got]) {
				t.Fatalf("frame %d differs", got)
			}
			buf[i].Kill()
			got++
		}
	}
	if got != len(frames) {
		t.Fatalf("received %d frames, want %d", got, len(frames))
	}
}

// TestReaderStreaming checks Next-level EOF behavior.
func TestReaderStreaming(t *testing.T) {
	var buf bytes.Buffer
	wr, _ := NewWriter(&buf, 0)
	wr.WriteRecord(Record{Data: []byte{1, 2, 3}})
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != stdio.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}
