package io

import (
	"bufio"
	"encoding/binary"
	"fmt"
	stdio "io"
	"os"
)

// Record is one captured frame: its timestamp, the captured bytes, and
// the original wire length (larger than len(Data) when the capture's
// snap length truncated the frame).
type Record struct {
	TSNanos int64
	Data    []byte
	OrigLen int
}

// Capture-format limits. Real captures use snap lengths of 64 KiB or
// less; the hard caps below bound what a hostile or corrupt file can
// make the reader allocate, turning overflow into an error instead of
// an out-of-memory crash.
const (
	// DefaultSnapLen is the snap length the writer records and the
	// reader assumes when a capture declares none.
	DefaultSnapLen = 65535
	// maxCaptureLen bounds a single record's captured length.
	maxCaptureLen = 1 << 21
	// maxBlockLen bounds a single pcapng block.
	maxBlockLen = 1 << 21
	// maxTSNanos is the largest timestamp classic pcap represents
	// (32-bit seconds plus a nanosecond fraction); timestamps are
	// clamped into [0, maxTSNanos] so every record the reader accepts
	// re-encodes exactly.
	maxTSNanos = (1<<32-1)*1_000_000_000 + 999_999_999
)

// clampTS clamps a timestamp into the classic-pcap-representable range.
func clampTS(ts int64) int64 {
	if ts < 0 {
		return 0
	}
	if ts > maxTSNanos {
		return maxTSNanos
	}
	return ts
}

// Classic pcap magic numbers (host-order variants detected by trying
// both byte orders) and the pcapng section header block type.
const (
	magicMicros  = 0xa1b2c3d4
	magicNanos   = 0xa1b23c4d
	ngBlockSHB   = 0x0a0d0d0a
	ngByteOrder  = 0x1a2b3c4d
	ngBlockIDB   = 0x00000001
	ngBlockSPB   = 0x00000003
	ngBlockEPB   = 0x00000006
	linkEthernet = 1
)

// Reader decodes a pcap or pcapng stream into Records. The format is
// detected from the first four bytes: classic pcap in either byte
// order and either timestamp precision, or a pcapng section. For
// pcapng, enhanced and simple packet blocks yield records and all
// other block types are skipped; interface timestamps are interpreted
// at the default microsecond resolution.
type Reader struct {
	br      *bufio.Reader
	order   binary.ByteOrder
	nanos   bool
	ng      bool
	snaplen uint32
}

// NewReader reads the stream's file header (or first section header)
// and returns a Reader positioned at the first record. It errors on
// unknown magic, truncated headers, and non-Ethernet link types.
func NewReader(r stdio.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReader(r)}
	var head [4]byte
	if _, err := stdio.ReadFull(rd.br, head[:]); err != nil {
		return nil, fmt.Errorf("pcap: truncated file header: %w", err)
	}
	le := binary.LittleEndian.Uint32(head[:])
	be := binary.BigEndian.Uint32(head[:])
	switch {
	case le == magicMicros || le == magicNanos:
		rd.order = binary.LittleEndian
		rd.nanos = le == magicNanos
	case be == magicMicros || be == magicNanos:
		rd.order = binary.BigEndian
		rd.nanos = be == magicNanos
	case le == ngBlockSHB: // block type is order-independent (palindrome)
		rd.ng = true
		return rd, rd.readSectionHeader()
	default:
		return nil, fmt.Errorf("pcap: bad magic %#08x", be)
	}
	var rest [20]byte
	if _, err := stdio.ReadFull(rd.br, rest[:]); err != nil {
		return nil, fmt.Errorf("pcap: truncated file header: %w", err)
	}
	// version(4) zone(4) sigfigs(4) snaplen(4) network(4)
	rd.snaplen = rd.order.Uint32(rest[12:16])
	if rd.snaplen == 0 {
		rd.snaplen = DefaultSnapLen
	}
	if network := rd.order.Uint32(rest[16:20]); network != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", network)
	}
	return rd, nil
}

// readSectionHeader parses a pcapng SHB whose 4-byte type has already
// been consumed, establishing the section's byte order.
func (rd *Reader) readSectionHeader() error {
	var fixed [8]byte // total length + byte-order magic
	if _, err := stdio.ReadFull(rd.br, fixed[:]); err != nil {
		return fmt.Errorf("pcapng: truncated section header: %w", err)
	}
	switch binary.LittleEndian.Uint32(fixed[4:8]) {
	case ngByteOrder:
		rd.order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(fixed[4:8]) != ngByteOrder {
			return fmt.Errorf("pcapng: bad byte-order magic")
		}
		rd.order = binary.BigEndian
	}
	total := rd.order.Uint32(fixed[0:4])
	if total < 28 || total%4 != 0 || total > maxBlockLen {
		return fmt.Errorf("pcapng: bad section header length %d", total)
	}
	// Remaining body (version, section length, options) plus trailing
	// total length; 12 bytes are already consumed.
	if err := rd.skip(int(total) - 12); err != nil {
		return fmt.Errorf("pcapng: truncated section header: %w", err)
	}
	rd.snaplen = 0 // set by the section's interface description
	return nil
}

func (rd *Reader) skip(n int) error {
	_, err := rd.br.Discard(n)
	if err == stdio.EOF {
		err = stdio.ErrUnexpectedEOF
	}
	return err
}

// Next returns the next record, or io.EOF at a clean end of stream.
// Truncated records, oversized lengths, and malformed blocks error.
func (rd *Reader) Next() (Record, error) {
	if rd.ng {
		return rd.nextNG()
	}
	var head [16]byte
	if _, err := stdio.ReadFull(rd.br, head[:]); err != nil {
		if err == stdio.EOF {
			return Record{}, stdio.EOF
		}
		return Record{}, fmt.Errorf("pcap: truncated record header: %w", err)
	}
	sec := rd.order.Uint32(head[0:4])
	frac := rd.order.Uint32(head[4:8])
	incl := rd.order.Uint32(head[8:12])
	orig := rd.order.Uint32(head[12:16])
	if incl > rd.snaplen || incl > maxCaptureLen {
		return Record{}, fmt.Errorf("pcap: record length %d exceeds snap length %d", incl, rd.snaplen)
	}
	if orig < incl {
		return Record{}, fmt.Errorf("pcap: original length %d below captured length %d", orig, incl)
	}
	if (rd.nanos && frac >= 1_000_000_000) || (!rd.nanos && frac >= 1_000_000) {
		return Record{}, fmt.Errorf("pcap: bad timestamp fraction %d", frac)
	}
	data := make([]byte, incl)
	if _, err := stdio.ReadFull(rd.br, data); err != nil {
		return Record{}, fmt.Errorf("pcap: truncated record body: %w", err)
	}
	ts := int64(sec) * 1e9
	if rd.nanos {
		ts += int64(frac)
	} else {
		ts += int64(frac) * 1e3
	}
	return Record{TSNanos: ts, Data: data, OrigLen: int(orig)}, nil
}

// nextNG walks pcapng blocks until a packet block yields a record.
func (rd *Reader) nextNG() (Record, error) {
	for {
		var head [8]byte
		if _, err := stdio.ReadFull(rd.br, head[:]); err != nil {
			if err == stdio.EOF {
				return Record{}, stdio.EOF
			}
			return Record{}, fmt.Errorf("pcapng: truncated block header: %w", err)
		}
		btype := rd.order.Uint32(head[0:4])
		if btype == ngBlockSHB {
			// A new section: re-establish byte order (the type field is
			// byte-order independent, the rest is not).
			if err := rd.readSectionHeader(); err != nil {
				return Record{}, err
			}
			continue
		}
		total := rd.order.Uint32(head[4:8])
		if total < 12 || total%4 != 0 || total > maxBlockLen {
			return Record{}, fmt.Errorf("pcapng: bad block length %d", total)
		}
		body := make([]byte, total-12)
		if _, err := stdio.ReadFull(rd.br, body); err != nil {
			return Record{}, fmt.Errorf("pcapng: truncated block: %w", err)
		}
		var trail [4]byte
		if _, err := stdio.ReadFull(rd.br, trail[:]); err != nil {
			return Record{}, fmt.Errorf("pcapng: truncated block trailer: %w", err)
		}
		if rd.order.Uint32(trail[:]) != total {
			return Record{}, fmt.Errorf("pcapng: block trailer disagrees with header")
		}
		switch btype {
		case ngBlockIDB:
			if len(body) < 8 {
				return Record{}, fmt.Errorf("pcapng: short interface description")
			}
			if lt := rd.order.Uint16(body[0:2]); lt != linkEthernet {
				return Record{}, fmt.Errorf("pcapng: unsupported link type %d", lt)
			}
			rd.snaplen = rd.order.Uint32(body[4:8])
		case ngBlockEPB:
			if len(body) < 20 {
				return Record{}, fmt.Errorf("pcapng: short enhanced packet block")
			}
			capLen := rd.order.Uint32(body[12:16])
			orig := rd.order.Uint32(body[16:20])
			if capLen > maxCaptureLen || int(capLen) > len(body)-20 {
				return Record{}, fmt.Errorf("pcapng: captured length %d exceeds block", capLen)
			}
			if orig < capLen {
				return Record{}, fmt.Errorf("pcapng: original length %d below captured length %d", orig, capLen)
			}
			micros := uint64(rd.order.Uint32(body[4:8]))<<32 | uint64(rd.order.Uint32(body[8:12]))
			var ts int64
			if micros > maxTSNanos/1000 {
				ts = maxTSNanos
			} else {
				ts = int64(micros) * 1000
			}
			data := make([]byte, capLen)
			copy(data, body[20:20+capLen])
			return Record{TSNanos: ts, Data: data, OrigLen: int(orig)}, nil
		case ngBlockSPB:
			if len(body) < 4 {
				return Record{}, fmt.Errorf("pcapng: short simple packet block")
			}
			orig := rd.order.Uint32(body[0:4])
			capLen := orig
			if rd.snaplen != 0 && capLen > rd.snaplen {
				capLen = rd.snaplen
			}
			if capLen > maxCaptureLen || int(capLen) > len(body)-4 {
				return Record{}, fmt.Errorf("pcapng: captured length %d exceeds block", capLen)
			}
			data := make([]byte, capLen)
			copy(data, body[4:4+capLen])
			return Record{Data: data, OrigLen: int(orig)}, nil
		default:
			// Name resolution, statistics, custom blocks: skipped.
		}
	}
}

// ReadAll drains the reader, returning every remaining record.
func (rd *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := rd.Next()
		if err == stdio.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// ReadPcap decodes an entire pcap or pcapng stream.
func ReadPcap(r stdio.Reader) ([]Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return rd.ReadAll()
}

// ReadPcapFile decodes a capture file.
func ReadPcapFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadPcap(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Writer encodes records as a classic little-endian pcap stream with
// nanosecond timestamps (magic 0xa1b23c4d), so a read-write-read round
// trip preserves timestamps exactly.
type Writer struct {
	w       stdio.Writer
	snaplen uint32
}

// NewWriter writes the 24-byte file header and returns a Writer. A
// zero snaplen uses DefaultSnapLen.
func NewWriter(w stdio.Writer, snaplen uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = DefaultSnapLen
	}
	var head [24]byte
	le := binary.LittleEndian
	le.PutUint32(head[0:4], magicNanos)
	le.PutUint16(head[4:6], 2) // version 2.4
	le.PutUint16(head[6:8], 4)
	le.PutUint32(head[16:20], snaplen)
	le.PutUint32(head[20:24], linkEthernet)
	if _, err := w.Write(head[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// WriteRecord appends one record, truncating its data to the snap
// length and recording the original length.
func (wr *Writer) WriteRecord(rec Record) error {
	data := rec.Data
	orig := rec.OrigLen
	if orig < len(data) {
		orig = len(data)
	}
	ts := clampTS(rec.TSNanos)
	if uint32(len(data)) > wr.snaplen {
		data = data[:wr.snaplen]
	}
	var head [16]byte
	le := binary.LittleEndian
	le.PutUint32(head[0:4], uint32(ts/1e9))
	le.PutUint32(head[4:8], uint32(ts%1e9))
	le.PutUint32(head[8:12], uint32(len(data)))
	le.PutUint32(head[12:16], uint32(orig))
	if _, err := wr.w.Write(head[:]); err != nil {
		return err
	}
	_, err := wr.w.Write(data)
	return err
}
