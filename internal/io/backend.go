// Package io is the dataplane driver layer: pluggable packet I/O
// backends that move batches of raw link-layer frames between a device
// element (PollDevice/FromDevice/ToDevice) and the outside world. It is
// the user-level half of Click's kernel/user driver split — the same
// element graph that runs against simulated NICs in netsim forwards
// real packets when its devices bind a Backend instead.
//
// Two backends ship with the driver:
//
//   - UDP: each configured device binds a local UDP socket; frames
//     travel as UDP payloads, so two routers (or a router and a test
//     harness) exchange real packets over localhost with no privileges.
//   - Pcap: file replay in and capture out, over a pure-Go pcap/pcapng
//     codec with no cgo or libpcap dependency, which turns any captured
//     trace into a reproducible workload and any run into a committed
//     golden capture.
//
// Backends live entirely outside the simcpu cost model: a router built
// without a CPU charges no model cycles, so Figure 8/9 calibration is
// untouched no matter which backend carries the packets.
package io

// Backend moves batches of raw link-layer frames for one device. The
// scalar and batched device elements drive it through the Device
// adapter, which translates frames to and from packet.Packet.
//
// Recv and Send are non-blocking: a backend with nothing pending
// returns 0 rather than waiting, because they run inside the router's
// cooperative task loop. A replay backend whose source is exhausted
// returns 0 and io.EOF from Recv so the driver can distinguish "idle
// for now" from "done forever".
type Backend interface {
	// Open readies the backend: binds sockets, opens files. It must be
	// called once before Recv or Send.
	Open() error
	// Recv fills buf with up to len(buf) received frames and returns
	// how many it delivered. The frames are owned by the backend and
	// valid only until the next Recv; callers copy (the Device adapter
	// copies into fresh packets).
	Recv(buf [][]byte) (int, error)
	// Send transmits frames, returning how many were accepted.
	Send(frames [][]byte) (int, error)
	// Close releases the backend's resources and flushes any capture
	// state. The backend is unusable afterwards.
	Close() error
}
