package io

import (
	stdio "io"
	"sync/atomic"

	"repro/internal/elements"
	"repro/internal/packet"
)

// Device adapts a Backend to the elements.Device (and BatchDevice)
// interface PollDevice/FromDevice/ToDevice drive, translating between
// raw frames and packet.Packet. Received frames are copied into fresh
// packets (backends own their buffers); transmitted packets are
// serialized out and killed. The adapter does no cost-model
// accounting: a router built without a CPU charges zero model cycles
// regardless of the backend behind it.
type Device struct {
	name string
	be   Backend

	rxScratch [][]byte
	txScratch [][]byte
	eof       bool

	// Rx and Tx count frames moved; TxErrors counts frames a backend
	// send refused or failed.
	Rx       int64
	Tx       int64
	TxErrors int64
}

// NewDevice wraps a backend as a named device. The backend must be
// opened (Open) before the router runs; OpenDevice does both.
func NewDevice(name string, be Backend) *Device {
	return &Device{name: name, be: be}
}

// OpenDevice wraps and opens a backend as a named device.
func OpenDevice(name string, be Backend) (*Device, error) {
	if err := be.Open(); err != nil {
		return nil, err
	}
	return NewDevice(name, be), nil
}

// Backend returns the wrapped backend.
func (d *Device) Backend() Backend { return d.be }

// EOF reports whether the backend's receive side is exhausted (a pcap
// replay that delivered its last frame).
func (d *Device) EOF() bool { return d.eof }

// Close closes the wrapped backend.
func (d *Device) Close() error { return d.be.Close() }

// DeviceName implements elements.Device.
func (d *Device) DeviceName() string { return d.name }

// RxDequeue implements elements.Device: receive one frame as a packet.
func (d *Device) RxDequeue() *packet.Packet {
	if d.eof {
		return nil
	}
	if cap(d.rxScratch) < 1 {
		d.rxScratch = make([][]byte, 1)
	}
	n, err := d.be.Recv(d.rxScratch[:1])
	if err == stdio.EOF {
		d.eof = true
	}
	if n == 0 {
		return nil
	}
	atomic.AddInt64(&d.Rx, 1)
	return packet.New(d.rxScratch[0])
}

// RxDequeueBatch implements elements.BatchDevice.
func (d *Device) RxDequeueBatch(buf []*packet.Packet) int {
	if d.eof {
		return 0
	}
	if cap(d.rxScratch) < len(buf) {
		d.rxScratch = make([][]byte, len(buf))
	}
	n, err := d.be.Recv(d.rxScratch[:len(buf)])
	if err == stdio.EOF {
		d.eof = true
	}
	for i := 0; i < n; i++ {
		buf[i] = packet.New(d.rxScratch[i])
	}
	if n > 0 {
		atomic.AddInt64(&d.Rx, int64(n))
	}
	return n
}

// TxEnqueue implements elements.Device: transmit one packet's frame.
func (d *Device) TxEnqueue(p *packet.Packet) bool {
	if cap(d.txScratch) < 1 {
		d.txScratch = make([][]byte, 1)
	}
	d.txScratch[0] = p.Data()
	n, err := d.be.Send(d.txScratch[:1])
	if n == 1 && err == nil {
		atomic.AddInt64(&d.Tx, 1)
	} else {
		atomic.AddInt64(&d.TxErrors, 1)
	}
	p.Kill()
	// The frame is never re-offered: a backend that refused it has no
	// DMA ring for it to wait in, so the send is accounted and dropped.
	return true
}

// TxEnqueueBatch implements elements.BatchDevice.
func (d *Device) TxEnqueueBatch(ps []*packet.Packet) int {
	if cap(d.txScratch) < len(ps) {
		d.txScratch = make([][]byte, len(ps))
	}
	for i, p := range ps {
		d.txScratch[i] = p.Data()
	}
	n, err := d.be.Send(d.txScratch[:len(ps)])
	atomic.AddInt64(&d.Tx, int64(n))
	if err != nil || n < len(ps) {
		atomic.AddInt64(&d.TxErrors, int64(len(ps)-n))
	}
	for _, p := range ps {
		p.Kill()
	}
	return len(ps)
}

// TxRoom implements elements.Device: backends apply their own
// backpressure (socket buffers, file writes), so the adapter always
// has room.
func (d *Device) TxRoom() bool { return true }

// TxClean implements elements.Device: nothing to reclaim.
func (d *Device) TxClean() int { return 0 }

var (
	_ elements.Device      = (*Device)(nil)
	_ elements.BatchDevice = (*Device)(nil)
)
