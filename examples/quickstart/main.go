// Quickstart: parse a Click-language configuration, build the router,
// run its task loop, and read the element counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/elements"
)

// A tiny push/pull pipeline: a source pushes synthetic UDP packets
// through a counter into a queue; a second counter pulls them out on
// the way to a ToDevice-less sink (Idle pulls nothing, so we drain the
// queue by hand at the end to show the pull side).
const config = `
// Sixty packets, four per task-loop pass.
src :: InfiniteSource(60, 4);

src -> in :: Counter
    -> q :: Queue(32)
    -> out :: Counter
    -> sink :: Idle;
`

func main() {
	rt, err := core.BuildFromText(config, "quickstart", elements.NewRegistry(), core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The task loop runs the source; Queue absorbs what fits.
	rounds := rt.RunUntilIdle(1000)
	fmt.Printf("task loop ran %d active rounds\n", rounds)

	in := rt.Find("in").(*elements.Counter)
	q := rt.Find("q").(*elements.Queue)
	fmt.Printf("pushed through 'in': %d packets (%d bytes)\n", in.Packets, in.Bytes)
	fmt.Printf("queue: %d queued, %d dropped (capacity %d)\n", q.Len(), q.Drops, q.Capacity())

	// Pull the queue dry through the downstream counter, as a
	// scheduled ToDevice would.
	out := rt.Find("out").(*elements.Counter)
	drained := 0
	for {
		p := out.Pull(0)
		if p == nil {
			break
		}
		p.Kill()
		drained++
	}
	fmt.Printf("pulled through 'out': %d packets\n", drained)
	fmt.Printf("counter 'out' saw %d packets\n", out.Packets)
}
