// QoS scheduling: three traffic classes into three queues, drained by a
// proportional-share StrideSched, with live reconfiguration through
// write handlers and a pcap trace of the scheduled output.
//
//	go run ./examples/qos [-trace out.pcap]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/elements"
)

const config = `
// Three sources emit continuously; paint marks the class.
gold   :: InfiniteSource(-1, 1) -> Paint(1) -> qg :: Queue(100) -> [0] sch;
silver :: InfiniteSource(-1, 1) -> Paint(2) -> qs :: Queue(100) -> [1] sch;
bronze :: InfiniteSource(-1, 1) -> Paint(3) -> qb :: Queue(100) -> [2] sch;

// 4:2:1 proportional share.
sch :: StrideSched(4, 2, 1) -> u :: Unqueue -> out :: PaintSwitch;
out [1] -> cg :: Counter -> Discard;
out [2] -> cs :: Counter -> Discard;
out [3] -> cb :: Counter -> Discard;
out [0] -> Discard;
`

func main() {
	trace := flag.String("trace", "", "write the scheduled stream to this pcap file")
	flag.Parse()

	cfg := config
	if *trace != "" {
		// Splice a ToDump between the scheduler bridge and the switch.
		cfg = `
gold   :: InfiniteSource(-1, 1) -> Paint(1) -> qg :: Queue(100) -> [0] sch;
silver :: InfiniteSource(-1, 1) -> Paint(2) -> qs :: Queue(100) -> [1] sch;
bronze :: InfiniteSource(-1, 1) -> Paint(3) -> qb :: Queue(100) -> [2] sch;
sch :: StrideSched(4, 2, 1) -> u :: Unqueue -> dump :: ToDump(` + *trace + `) -> out :: PaintSwitch;
out [1] -> cg :: Counter -> Discard;
out [2] -> cs :: Counter -> Discard;
out [3] -> cb :: Counter -> Discard;
out [0] -> Discard;
`
	}

	rt, err := core.BuildFromText(cfg, "qos", elements.NewRegistry(), core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Run for a while: sources fill their queues each round; the
	// Unqueue drains one packet per round through the scheduler.
	for i := 0; i < 2100; i++ {
		rt.RunTaskRound()
	}
	read := func(h string) string {
		v, err := rt.ReadHandler(h)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	fmt.Println("service counts with 4:2:1 tickets:")
	fmt.Printf("  gold   %s\n", read("cg.count"))
	fmt.Printf("  silver %s\n", read("cs.count"))
	fmt.Printf("  bronze %s\n", read("cb.count"))

	// Live reconfiguration via handlers: starve bronze by routing its
	// class to the drop port... the PaintSwitch has no write handler,
	// but Counters reset live:
	for _, h := range []string{"cg.reset_counts", "cs.reset_counts", "cb.reset_counts"} {
		if err := rt.WriteHandler(h, ""); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 700; i++ {
		rt.RunTaskRound()
	}
	fmt.Println("after reset_counts and another 700 rounds:")
	fmt.Printf("  gold   %s\n", read("cg.count"))
	fmt.Printf("  silver %s\n", read("cs.count"))
	fmt.Printf("  bronze %s\n", read("cb.count"))

	if *trace != "" {
		if td, ok := rt.Find("dump").(*elements.ToDump); ok {
			td.Close()
			fmt.Printf("wrote scheduled stream to %s\n", *trace)
		}
	}
}
