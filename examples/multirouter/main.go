// Multiple-router optimization (§7.2): combine two IP routers joined by
// a point-to-point link into one configuration, remove the ARP
// machinery on that link with click-xform patterns, and extract the
// optimized routers back out with click-uncombine.
//
//	go run ./examples/multirouter [-print]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
)

func mustIfs(base byte) []iprouter.Interface {
	out := iprouter.Interfaces(2)
	for i := range out {
		// Renumber the second router's subnets so the two routers
		// don't collide.
		out[i].Addr = packet.MakeIP4(10, 0, base+byte(i), 1)
		out[i].HostAddr = packet.MakeIP4(10, 0, base+byte(i), 2)
		out[i].Ether[4] = base + byte(i)
		out[i].HostEth[4] = base + byte(i)
	}
	return out
}

func main() {
	printCfg := flag.Bool("print", false, "print the combined configuration")
	flag.Parse()

	ga, err := lang.ParseRouter(iprouter.Config(mustIfs(0)), "routerA")
	if err != nil {
		log.Fatal(err)
	}
	gb, err := lang.ParseRouter(iprouter.Config(mustIfs(2)), "routerB")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router a: %d elements; router b: %d elements\n", ga.NumElements(), gb.NumElements())

	// click-combine: A's eth1 and B's eth0 face each other.
	combined, err := opt.Combine(
		[]opt.RouterInput{{Name: "a", Config: ga}, {Name: "b", Config: gb}},
		[]opt.Link{
			{FromRouter: "a", FromDev: "eth1", ToRouter: "b", ToDev: "eth0"},
			{FromRouter: "b", FromDev: "eth0", ToRouter: "a", ToDev: "eth1"},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined: %d elements (RouterLinks replace the joined device pairs)\n", combined.NumElements())

	// click-xform with the ARP-elimination patterns: the combined graph
	// proves each link is point-to-point and binds the peer's MAC from
	// its ARPResponder's configuration.
	pairs, err := opt.ParsePatterns(iprouter.ARPElimPatterns, "arp-elimination")
	if err != nil {
		log.Fatal(err)
	}
	n := opt.Xform(combined, pairs)
	fmt.Printf("ARP elimination applied %d time(s)\n", n)
	if *printCfg {
		fmt.Println(lang.Unparse(combined))
	}

	// click-uncombine: pull router A back out and inspect the result.
	backA, err := opt.Uncombine(combined, "a")
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range backA.LiveIndices() {
		e := backA.Element(i)
		if e.Class == "EtherEncapARP" {
			fmt.Printf("router a's %s is now %s(%s) — static encapsulation, no ARP\n",
				e.Name, e.Class, e.Config)
		}
	}
	for _, i := range backA.LiveIndices() {
		e := backA.Element(i)
		if e.Class == "ARPQuerier" {
			fmt.Printf("router a's %s keeps its ARPQuerier (edge link, peers unknown)\n", e.Name)
		}
	}
}
