// The §4 firewall experiment as a standalone program: a 17-rule
// IPFilter (DNS rule next to last), classified both by the generic
// interpreter and by the click-fastclassifier compiled form, with the
// decision tree and generated source on display.
//
//	go run ./examples/firewall [-tree] [-src]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/classifier"
	"repro/internal/experiments"
	"repro/internal/iprouter"
	"repro/internal/packet"
)

func main() {
	showTree := flag.Bool("tree", false, "print the optimized decision tree")
	showSrc := flag.Bool("src", false, "print the generated Go source")
	flag.Parse()

	rules := iprouter.FirewallRules()
	fmt.Printf("firewall: %d rules, DNS-5 is rule %d\n", len(rules), len(rules)-1)

	prog, err := classifier.BuildIPFilterProgram(rules)
	if err != nil {
		log.Fatal(err)
	}
	raw := len(prog.Exprs)
	prog.Optimize()
	fmt.Printf("decision tree: %d nodes raw, %d after optimization, depth %d\n",
		raw, len(prog.Exprs), prog.Depth())
	if *showTree {
		fmt.Println(prog)
	}
	if *showSrc {
		fmt.Println(classifier.GenerateGoSource("FastClassifier_firewall", prog))
	}

	// Classify a few sample packets through interpreter and compiled
	// form.
	comp := classifier.Compile(prog)
	samples := []struct {
		name string
		mk   func() *packet.Packet
	}{
		{"DNS to bastion (allow, rule 16)", iprouter.DNS5Packet},
		{"telnet (deny, rule 5)", func() *packet.Packet {
			p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
				packet.MakeIP4(192, 0, 2, 9), packet.MakeIP4(10, 0, 0, 7), 999, 23, make([]byte, 14))
			p.Pull(packet.EtherHeaderLen)
			h, _ := p.IPHeader()
			h.SetProto(packet.IPProtoTCP)
			h.UpdateChecksum()
			return p
		}},
		{"random UDP (default deny, rule 17)", func() *packet.Packet {
			p := packet.BuildUDP4(packet.EtherAddr{}, packet.EtherAddr{},
				packet.MakeIP4(192, 0, 2, 9), packet.MakeIP4(10, 0, 0, 7), 999, 9999, make([]byte, 14))
			p.Pull(packet.EtherHeaderLen)
			return p
		}},
	}
	for _, s := range samples {
		d := s.mk().Data()
		_, okI, stepsI := prog.Match(d)
		_, okC, stepsC := comp.Match(d)
		if okI != okC || stepsI != stepsC {
			log.Fatalf("interpreter and compiled classifier disagree on %s", s.name)
		}
		verdict := "DENY"
		if okI {
			verdict = "ALLOW"
		}
		fmt.Printf("  %-36s %-5s (%d tree steps)\n", s.name, verdict, stepsI)
	}

	// The paper's measurement: CPU cost for the DNS-5 packet.
	interp, compiled, steps, err := experiments.MeasureFirewall()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDNS-5 cost on the 700 MHz model (%d steps):\n", steps)
	fmt.Printf("  interpreted IPFilter:  %4.0f ns   (paper: 388 ns)\n", interp)
	fmt.Printf("  click-fastclassifier:  %4.0f ns   (paper: 188 ns)\n", compiled)
	fmt.Printf("  reduction:             %4.0f%%\n", (1-compiled/interp)*100)
}
