// The Figure 1 IP router, end to end: generate the standard two-
// interface configuration, run the full optimizer chain (click-xform,
// click-fastclassifier, click-devirtualize), forward packets through
// both versions on the simulated testbed, and compare per-packet CPU
// cost.
//
//	go run ./examples/iprouter [-print]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/elements"
	"repro/internal/iprouter"
	"repro/internal/lang"
	"repro/internal/netsim"
	"repro/internal/opt"
	"repro/internal/simcpu"
)

func main() {
	printCfg := flag.Bool("print", false, "print the generated configurations")
	flag.Parse()

	ifs := iprouter.Interfaces(2)
	baseText := iprouter.Config(ifs)
	if *printCfg {
		fmt.Println("=== unoptimized configuration ===")
		fmt.Println(baseText)
	}

	// Unoptimized router.
	base, err := lang.ParseRouter(baseText, "iprouter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unoptimized: %d elements\n", base.NumElements())

	// The optimizer chain, in the order the paper recommends
	// (devirtualize last — it cements the graph).
	optimized, err := lang.ParseRouter(baseText, "iprouter")
	if err != nil {
		log.Fatal(err)
	}
	reg := elements.NewRegistry()
	pairs, err := opt.ParsePatterns(iprouter.ComboPatterns, "combo-patterns")
	if err != nil {
		log.Fatal(err)
	}
	n := opt.Xform(optimized, pairs)
	fmt.Printf("click-xform: %d replacements\n", n)
	if err := opt.FastClassifier(optimized, reg); err != nil {
		log.Fatal(err)
	}
	if err := opt.Devirtualize(optimized, reg, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized: %d elements\n", optimized.NumElements())
	if *printCfg {
		fmt.Println("=== optimized configuration ===")
		fmt.Println(lang.Unparse(optimized))
	}

	// Forward traffic through both on the simulated 700 MHz testbed.
	run := func(name string, g *netsim.ConfigVariant) {
		res, err := netsim.RunPoint(g.Graph, netsim.TestbedOptions{
			Platform: simcpu.P0, NIC: netsim.Tulip, Ifs: ifs, Registry: g.Registry,
		}, 100000, 5e6, 20e6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s forwarded %6.0f pps, forwarding path %4.0f ns/packet (total %4.0f ns)\n",
			name, res.ForwardPPS, res.ForwardNS, res.TotalCPUNS)
	}
	run("unoptimized", &netsim.ConfigVariant{Graph: base, Registry: elements.NewRegistry()})
	run("optimized", &netsim.ConfigVariant{Graph: optimized, Registry: reg})
}
