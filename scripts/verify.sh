#!/bin/sh
# Full verification: build, vet, tests, and the race-detector tier.
# The -race run matters because the parallel scheduler and the batched
# transfer paths share Queue rings, ARP tables, and the packet pool
# across workers; the differential tests in internal/opt drive those
# paths under 2 workers and will surface unguarded state here. The
# hot-swap differential tests run under -race explicitly: a mid-round
# swap on the parallel scheduler is exactly where a missed round
# boundary would show up as a data race on transplanted state.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./...
go test -race -run 'Hotswap|DifferentialHotswap' ./internal/core ./internal/opt ./internal/netsim ./internal/elements
# Lock-free tier: the SPSC/MPSC Queue rings, the sharded packet pool,
# concurrent refcounting, handler reads during traffic, and the
# steal paths, each driven by a dedicated concurrent test.
go test -race -run 'QueueBatchConcurrent|QueueHandlersDuringTraffic|Concurrent|StealRace|Stealing' ./internal/elements ./internal/packet ./internal/core
# Fusion tier: the whole-path classifier fusion pass end to end — the
# FDD build and splice algebra, the pass's archive round trip and
# ordering against the other optimizers, the property-based equivalence
# harness, and the ruleset-sweep benchmark smoke.
go test -race -run 'Fuse|Fusion|SpecializeFDD|Splice' ./internal/classifier ./internal/opt ./internal/experiments
# Flow-cache tier: the exact-match fast path in front of the pipeline —
# guarded invalidation against route/ARP/config writes, hot-swap entry
# transplant under Zipf load, the differential matrix with the install
# pass enabled, and the mutation fuzzer's seed corpus. Runs under -race
# because the per-shard caches and guard generations are read on the
# fast path while write handlers bump them from other goroutines.
go test -race -run 'FlowCache|AdaptiveFuseSurvives' ./internal/opt ./internal/experiments
# Management tier: the multi-tenant plane under the race detector —
# hierarchical handler paths with hostile element names, HTTP round
# trips, tenant lifecycle (create/swap/delete with transplant), the
# N-tenant isolation hammer, and write handlers mutating Queue and RED
# settings from a second goroutine while parallel traffic runs. These
# exercise the SyncDo rendezvous: control operations must only ever
# run at a scheduler round boundary or epoch quiescent point.
go test -race -run 'Hostile|HTTP|Tenant|Isolation|WriteHandlersDuringParallelTraffic' ./internal/core ./internal/mgmt ./internal/elements
# Backend tier: real packet I/O under the race detector — the UDP
# socket pump feeding the router's task loop from another goroutine,
# the pcap replay/capture devices inside the parallel scheduler, and
# the golden-trace byte-equality matrix across passes and modes.
go test -race -run 'UDPLoopback|UDPBackend|PcapBackend|Replay' ./internal/io ./internal/opt ./internal/netsim
# Incremental-admission tier: splice/remove/transplant against the
# epoch scheduler, the randomized incremental-vs-full-rebuild and
# shared-vs-private-FDD equivalence difftests, per-tenant guard
# isolation, the intern table, and the multi-goroutine admission
# hammer against a live pump. Runs under -race because every control
# patch lands at a quiescent point while workers free-run.
go test -race -run 'Incremental|MgmtScale|Equivalence|SharedFDD|InternTable' ./internal/core ./internal/mgmt ./internal/netsim ./internal/experiments ./internal/classifier
