// Click IP router (Figure 1), generated configuration.

rt :: LookupIPRoute(10.0.0.0/24 0, 10.0.1.0/24 1);

// Interface 0: eth0 (10.0.0.1, 00:00:c0:00:00:01)
fd0 :: PollDevice(eth0);
td0 :: ToDevice(eth0);
c0 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out0 :: Queue;
arpq0 :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01);
fd0 -> c0;
c0 [0] -> ARPResponder(10.0.0.1, 00:00:c0:00:00:01) -> out0;
c0 [1] -> [1] arpq0;
c0 [2] -> Paint(1) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255) -> GetIPAddress(16) -> rt;
c0 [3] -> Discard;
rt [0] -> DropBroadcasts -> cp0 :: CheckPaint(1) -> gio0 :: IPGWOptions(10.0.0.1) -> FixIPSrc(10.0.0.1) -> dt0 :: DecIPTTL -> fr0 :: IPFragmenter(1500) -> [0] arpq0;
arpq0 -> out0 -> td0;
cp0 [1] -> ICMPError(10.0.0.1, redirect, 1) -> rt;
gio0 [1] -> ICMPError(10.0.0.1, parameterproblem, 0) -> rt;
dt0 [1] -> ICMPError(10.0.0.1, timeexceeded, 0) -> rt;
fr0 [1] -> ICMPError(10.0.0.1, unreachable, 4) -> rt;

// Interface 1: eth1 (10.0.1.1, 00:00:c0:00:01:01)
fd1 :: PollDevice(eth1);
td1 :: ToDevice(eth1);
c1 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out1 :: Queue;
arpq1 :: ARPQuerier(10.0.1.1, 00:00:c0:00:01:01);
fd1 -> c1;
c1 [0] -> ARPResponder(10.0.1.1, 00:00:c0:00:01:01) -> out1;
c1 [1] -> [1] arpq1;
c1 [2] -> Paint(2) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255) -> GetIPAddress(16) -> rt;
c1 [3] -> Discard;
rt [1] -> DropBroadcasts -> cp1 :: CheckPaint(2) -> gio1 :: IPGWOptions(10.0.1.1) -> FixIPSrc(10.0.1.1) -> dt1 :: DecIPTTL -> fr1 :: IPFragmenter(1500) -> [0] arpq1;
arpq1 -> out1 -> td1;
cp1 [1] -> ICMPError(10.0.1.1, redirect, 1) -> rt;
gio1 [1] -> ICMPError(10.0.1.1, parameterproblem, 0) -> rt;
dt1 [1] -> ICMPError(10.0.1.1, timeexceeded, 0) -> rt;
fr1 [1] -> ICMPError(10.0.1.1, unreachable, 4) -> rt;

