// Minimal Click configuration: devices and one queue per path.

fd0 :: PollDevice(eth0) -> q0 :: Queue -> td4 :: ToDevice(eth4);
fd1 :: PollDevice(eth1) -> q1 :: Queue -> td5 :: ToDevice(eth5);
fd2 :: PollDevice(eth2) -> q2 :: Queue -> td6 :: ToDevice(eth6);
fd3 :: PollDevice(eth3) -> q3 :: Queue -> td7 :: ToDevice(eth7);
