// Click IP router (Figure 1), generated configuration.

rt :: LookupIPRoute(10.0.0.0/24 0, 10.0.1.0/24 1, 10.0.2.0/24 2, 10.0.3.0/24 3, 10.0.4.0/24 4, 10.0.5.0/24 5, 10.0.6.0/24 6, 10.0.7.0/24 7);

// Interface 0: eth0 (10.0.0.1, 00:00:c0:00:00:01)
fd0 :: PollDevice(eth0);
td0 :: ToDevice(eth0);
c0 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out0 :: Queue;
arpq0 :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01);
fd0 -> c0;
c0 [0] -> ARPResponder(10.0.0.1, 00:00:c0:00:00:01) -> out0;
c0 [1] -> [1] arpq0;
c0 [2] -> Paint(1) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c0 [3] -> Discard;
rt [0] -> DropBroadcasts -> cp0 :: CheckPaint(1) -> gio0 :: IPGWOptions(10.0.0.1) -> FixIPSrc(10.0.0.1) -> dt0 :: DecIPTTL -> fr0 :: IPFragmenter(1500) -> [0] arpq0;
arpq0 -> out0 -> td0;
cp0 [1] -> ICMPError(10.0.0.1, redirect, 1) -> rt;
gio0 [1] -> ICMPError(10.0.0.1, parameterproblem, 0) -> rt;
dt0 [1] -> ICMPError(10.0.0.1, timeexceeded, 0) -> rt;
fr0 [1] -> ICMPError(10.0.0.1, unreachable, 4) -> rt;

// Interface 1: eth1 (10.0.1.1, 00:00:c0:00:01:01)
fd1 :: PollDevice(eth1);
td1 :: ToDevice(eth1);
c1 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out1 :: Queue;
arpq1 :: ARPQuerier(10.0.1.1, 00:00:c0:00:01:01);
fd1 -> c1;
c1 [0] -> ARPResponder(10.0.1.1, 00:00:c0:00:01:01) -> out1;
c1 [1] -> [1] arpq1;
c1 [2] -> Paint(2) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c1 [3] -> Discard;
rt [1] -> DropBroadcasts -> cp1 :: CheckPaint(2) -> gio1 :: IPGWOptions(10.0.1.1) -> FixIPSrc(10.0.1.1) -> dt1 :: DecIPTTL -> fr1 :: IPFragmenter(1500) -> [0] arpq1;
arpq1 -> out1 -> td1;
cp1 [1] -> ICMPError(10.0.1.1, redirect, 1) -> rt;
gio1 [1] -> ICMPError(10.0.1.1, parameterproblem, 0) -> rt;
dt1 [1] -> ICMPError(10.0.1.1, timeexceeded, 0) -> rt;
fr1 [1] -> ICMPError(10.0.1.1, unreachable, 4) -> rt;

// Interface 2: eth2 (10.0.2.1, 00:00:c0:00:02:01)
fd2 :: PollDevice(eth2);
td2 :: ToDevice(eth2);
c2 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out2 :: Queue;
arpq2 :: ARPQuerier(10.0.2.1, 00:00:c0:00:02:01);
fd2 -> c2;
c2 [0] -> ARPResponder(10.0.2.1, 00:00:c0:00:02:01) -> out2;
c2 [1] -> [1] arpq2;
c2 [2] -> Paint(3) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c2 [3] -> Discard;
rt [2] -> DropBroadcasts -> cp2 :: CheckPaint(3) -> gio2 :: IPGWOptions(10.0.2.1) -> FixIPSrc(10.0.2.1) -> dt2 :: DecIPTTL -> fr2 :: IPFragmenter(1500) -> [0] arpq2;
arpq2 -> out2 -> td2;
cp2 [1] -> ICMPError(10.0.2.1, redirect, 1) -> rt;
gio2 [1] -> ICMPError(10.0.2.1, parameterproblem, 0) -> rt;
dt2 [1] -> ICMPError(10.0.2.1, timeexceeded, 0) -> rt;
fr2 [1] -> ICMPError(10.0.2.1, unreachable, 4) -> rt;

// Interface 3: eth3 (10.0.3.1, 00:00:c0:00:03:01)
fd3 :: PollDevice(eth3);
td3 :: ToDevice(eth3);
c3 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out3 :: Queue;
arpq3 :: ARPQuerier(10.0.3.1, 00:00:c0:00:03:01);
fd3 -> c3;
c3 [0] -> ARPResponder(10.0.3.1, 00:00:c0:00:03:01) -> out3;
c3 [1] -> [1] arpq3;
c3 [2] -> Paint(4) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c3 [3] -> Discard;
rt [3] -> DropBroadcasts -> cp3 :: CheckPaint(4) -> gio3 :: IPGWOptions(10.0.3.1) -> FixIPSrc(10.0.3.1) -> dt3 :: DecIPTTL -> fr3 :: IPFragmenter(1500) -> [0] arpq3;
arpq3 -> out3 -> td3;
cp3 [1] -> ICMPError(10.0.3.1, redirect, 1) -> rt;
gio3 [1] -> ICMPError(10.0.3.1, parameterproblem, 0) -> rt;
dt3 [1] -> ICMPError(10.0.3.1, timeexceeded, 0) -> rt;
fr3 [1] -> ICMPError(10.0.3.1, unreachable, 4) -> rt;

// Interface 4: eth4 (10.0.4.1, 00:00:c0:00:04:01)
fd4 :: PollDevice(eth4);
td4 :: ToDevice(eth4);
c4 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out4 :: Queue;
arpq4 :: ARPQuerier(10.0.4.1, 00:00:c0:00:04:01);
fd4 -> c4;
c4 [0] -> ARPResponder(10.0.4.1, 00:00:c0:00:04:01) -> out4;
c4 [1] -> [1] arpq4;
c4 [2] -> Paint(5) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c4 [3] -> Discard;
rt [4] -> DropBroadcasts -> cp4 :: CheckPaint(5) -> gio4 :: IPGWOptions(10.0.4.1) -> FixIPSrc(10.0.4.1) -> dt4 :: DecIPTTL -> fr4 :: IPFragmenter(1500) -> [0] arpq4;
arpq4 -> out4 -> td4;
cp4 [1] -> ICMPError(10.0.4.1, redirect, 1) -> rt;
gio4 [1] -> ICMPError(10.0.4.1, parameterproblem, 0) -> rt;
dt4 [1] -> ICMPError(10.0.4.1, timeexceeded, 0) -> rt;
fr4 [1] -> ICMPError(10.0.4.1, unreachable, 4) -> rt;

// Interface 5: eth5 (10.0.5.1, 00:00:c0:00:05:01)
fd5 :: PollDevice(eth5);
td5 :: ToDevice(eth5);
c5 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out5 :: Queue;
arpq5 :: ARPQuerier(10.0.5.1, 00:00:c0:00:05:01);
fd5 -> c5;
c5 [0] -> ARPResponder(10.0.5.1, 00:00:c0:00:05:01) -> out5;
c5 [1] -> [1] arpq5;
c5 [2] -> Paint(6) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c5 [3] -> Discard;
rt [5] -> DropBroadcasts -> cp5 :: CheckPaint(6) -> gio5 :: IPGWOptions(10.0.5.1) -> FixIPSrc(10.0.5.1) -> dt5 :: DecIPTTL -> fr5 :: IPFragmenter(1500) -> [0] arpq5;
arpq5 -> out5 -> td5;
cp5 [1] -> ICMPError(10.0.5.1, redirect, 1) -> rt;
gio5 [1] -> ICMPError(10.0.5.1, parameterproblem, 0) -> rt;
dt5 [1] -> ICMPError(10.0.5.1, timeexceeded, 0) -> rt;
fr5 [1] -> ICMPError(10.0.5.1, unreachable, 4) -> rt;

// Interface 6: eth6 (10.0.6.1, 00:00:c0:00:06:01)
fd6 :: PollDevice(eth6);
td6 :: ToDevice(eth6);
c6 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out6 :: Queue;
arpq6 :: ARPQuerier(10.0.6.1, 00:00:c0:00:06:01);
fd6 -> c6;
c6 [0] -> ARPResponder(10.0.6.1, 00:00:c0:00:06:01) -> out6;
c6 [1] -> [1] arpq6;
c6 [2] -> Paint(7) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c6 [3] -> Discard;
rt [6] -> DropBroadcasts -> cp6 :: CheckPaint(7) -> gio6 :: IPGWOptions(10.0.6.1) -> FixIPSrc(10.0.6.1) -> dt6 :: DecIPTTL -> fr6 :: IPFragmenter(1500) -> [0] arpq6;
arpq6 -> out6 -> td6;
cp6 [1] -> ICMPError(10.0.6.1, redirect, 1) -> rt;
gio6 [1] -> ICMPError(10.0.6.1, parameterproblem, 0) -> rt;
dt6 [1] -> ICMPError(10.0.6.1, timeexceeded, 0) -> rt;
fr6 [1] -> ICMPError(10.0.6.1, unreachable, 4) -> rt;

// Interface 7: eth7 (10.0.7.1, 00:00:c0:00:07:01)
fd7 :: PollDevice(eth7);
td7 :: ToDevice(eth7);
c7 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
out7 :: Queue;
arpq7 :: ARPQuerier(10.0.7.1, 00:00:c0:00:07:01);
fd7 -> c7;
c7 [0] -> ARPResponder(10.0.7.1, 00:00:c0:00:07:01) -> out7;
c7 [1] -> [1] arpq7;
c7 [2] -> Paint(8) -> Strip(14) -> CheckIPHeader(10.0.0.255 10.0.1.255 10.0.2.255 10.0.3.255 10.0.4.255 10.0.5.255 10.0.6.255 10.0.7.255) -> GetIPAddress(16) -> rt;
c7 [3] -> Discard;
rt [7] -> DropBroadcasts -> cp7 :: CheckPaint(8) -> gio7 :: IPGWOptions(10.0.7.1) -> FixIPSrc(10.0.7.1) -> dt7 :: DecIPTTL -> fr7 :: IPFragmenter(1500) -> [0] arpq7;
arpq7 -> out7 -> td7;
cp7 [1] -> ICMPError(10.0.7.1, redirect, 1) -> rt;
gio7 [1] -> ICMPError(10.0.7.1, parameterproblem, 0) -> rt;
dt7 [1] -> ICMPError(10.0.7.1, timeexceeded, 0) -> rt;
fr7 [1] -> ICMPError(10.0.7.1, unreachable, 4) -> rt;

