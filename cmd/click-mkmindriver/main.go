// Command click-mkmindriver computes the minimal set of element classes
// a configuration needs and emits the corresponding driver manifest.
//
// The manifest (or, with -l, the bare class list) goes to stdout;
// diagnostics go to stderr. The exit status is 0 on success, 1 on any
// error, 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("click-mkmindriver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("f", "-", "configuration file (- = stdin)")
	list := fs.Bool("l", false, "print only the class list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The registry the configuration was read into also holds any
	// generated classes its archive installed; analyzing against a fresh
	// registry would reject every optimized configuration as using
	// unknown classes.
	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		fmt.Fprintf(stderr, "click-mkmindriver: %v\n", err)
		return 1
	}
	classes, src, err := opt.MinDriver(g, reg)
	if err != nil {
		fmt.Fprintf(stderr, "click-mkmindriver: %v\n", err)
		return 1
	}
	if *list {
		for _, c := range classes {
			fmt.Fprintln(stdout, c)
		}
		return 0
	}
	io.WriteString(stdout, src)
	return 0
}
