// Command click-mkmindriver computes the minimal set of element classes
// a configuration needs and emits the corresponding driver manifest.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	list := flag.Bool("l", false, "print only the class list")
	flag.Parse()

	g, err := tool.ReadConfig(*file, tool.Registry())
	if err != nil {
		tool.Fail("click-mkmindriver", err)
	}
	classes, src, err := opt.MinDriver(g, tool.Registry())
	if err != nil {
		tool.Fail("click-mkmindriver", err)
	}
	if *list {
		for _, c := range classes {
			fmt.Println(c)
		}
		return
	}
	os.Stdout.WriteString(src)
}
