package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/tool"
)

func writeConfig(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.click")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMkMinDriverListsClasses(t *testing.T) {
	path := writeConfig(t, "s :: InfiniteSource -> c :: Counter -> d :: Discard;")
	var out, errw bytes.Buffer
	if code := run([]string{"-f", path, "-l"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if got, want := out.String(), "Counter\nDiscard\nInfiniteSource\n"; got != want {
		t.Errorf("class list = %q, want %q", got, want)
	}
	var manifest bytes.Buffer
	if code := run([]string{"-f", path}, &manifest, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, want := range []string{"package mindriver", "//   Counter"} {
		if !strings.Contains(manifest.String(), want) {
			t.Errorf("manifest missing %q:\n%s", want, manifest.String())
		}
	}
}

// TestMkMinDriverSeesArchiveClasses: an optimized configuration carries
// generated element classes in its archive; the analysis must run
// against the registry those classes were installed into, not a fresh
// one that would reject them as unknown.
func TestMkMinDriverSeesArchiveClasses(t *testing.T) {
	g, err := lang.ParseRouter(`
s :: InfiniteSource -> cl :: Classifier(12/0800, -) -> d :: Discard;
cl [1] -> d2 :: Discard;`, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.FastClassifier(g, tool.Registry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "optimized.click")
	if err := tool.WriteConfig(g, path); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-f", path, "-l"}, &out, &errw); code != 0 {
		t.Fatalf("optimized config rejected (exit %d): %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "FastClassifier@@") {
		t.Errorf("generated class missing from list:\n%s", out.String())
	}
}

func TestMkMinDriverErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-f", filepath.Join(t.TempDir(), "missing.click")}, &out, &errw); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	if out.Len() != 0 {
		t.Errorf("error run wrote %q to stdout", out.String())
	}
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
