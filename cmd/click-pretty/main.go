// Command click-pretty renders a configuration as HTML: a table of
// element declarations and a cross-linked connection list.
package main

import (
	"flag"
	"fmt"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	title := flag.String("title", "Click configuration", "page title")
	flag.Parse()

	g, err := tool.ReadConfig(*file, tool.Registry())
	if err != nil {
		tool.Fail("click-pretty", err)
	}
	fmt.Print(opt.Pretty(g, *title))
}
