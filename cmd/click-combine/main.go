// Command click-combine merges several router configurations into one
// combined configuration (§7.2) so cross-router analyses and
// optimizations — like ARP elimination on point-to-point links — can
// run. Routers are given as name=file arguments; links as
// "a.eth0 -> b.eth1" strings via -l flags.
//
// Example:
//
//	click-combine -o net.click a=a.click b=b.click \
//	    -l "a.eth1 -> b.eth0" -l "b.eth0 -> a.eth1"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/opt"
	"repro/internal/tool"
)

type linkList []string

func (l *linkList) String() string     { return strings.Join(*l, "; ") }
func (l *linkList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	out := flag.String("o", "-", "output file (- = stdout)")
	var linkFlags linkList
	flag.Var(&linkFlags, "l", "inter-router link \"a.dev -> b.dev\" (repeatable)")
	flag.Parse()

	if flag.NArg() == 0 {
		tool.Fail("click-combine", fmt.Errorf("no routers given (want name=file arguments)"))
	}
	var routers []opt.RouterInput
	for _, arg := range flag.Args() {
		eq := strings.IndexByte(arg, '=')
		if eq <= 0 {
			tool.Fail("click-combine", fmt.Errorf("bad router argument %q (want name=file)", arg))
		}
		name, path := arg[:eq], arg[eq+1:]
		g, err := tool.ReadConfig(path, tool.Registry())
		if err != nil {
			tool.Fail("click-combine", err)
		}
		routers = append(routers, opt.RouterInput{Name: name, Config: g})
	}
	var links []opt.Link
	for _, s := range linkFlags {
		l, err := opt.ParseLink(s)
		if err != nil {
			tool.Fail("click-combine", err)
		}
		links = append(links, l)
	}
	combined, err := opt.Combine(routers, links)
	if err != nil {
		tool.Fail("click-combine", err)
	}
	if err := tool.WriteConfig(combined, *out); err != nil {
		tool.Fail("click-combine", err)
	}
	fmt.Fprintf(os.Stderr, "click-combine: %d router(s), %d link(s)\n", len(routers), len(links))
}
