// Command click-fuse fuses runs of consecutive classification elements
// into single generated decision-diagram classifiers. It reads a
// configuration on standard input and writes the rewritten
// configuration, with the generated source attached as an archive, to
// standard output. Because ReadConfig installs the archive's generated
// classes first, fusion composes with click-fastclassifier and
// click-devirtualize output in either order.
package main

import (
	"flag"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-fuse", err)
	}
	if err := opt.Fuse(g, reg); err != nil {
		tool.Fail("click-fuse", err)
	}
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-fuse", err)
	}
}
