package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iprouter"
)

// TestAlignToolIsIdempotent runs click-align twice through the full
// write/re-read round trip: the first run inserts Aligns, the second run
// over its own output inserts and removes nothing, and the configuration
// output stays on stdout with diagnostics on stderr.
func TestAlignToolIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "ip.click")
	if err := os.WriteFile(in, []byte(iprouter.Config(iprouter.Interfaces(2))), 0o644); err != nil {
		t.Fatal(err)
	}

	var out1, err1 bytes.Buffer
	if code := run([]string{"-f", in}, &out1, &err1); code != 0 {
		t.Fatalf("first run exit %d: %s", code, err1.String())
	}
	if !strings.Contains(err1.String(), "inserted 2") {
		t.Errorf("first run diagnostic = %q, want 2 insertions", err1.String())
	}
	if !strings.Contains(out1.String(), "Align") {
		t.Error("aligned configuration missing Align elements")
	}
	// The diagnostic must not leak into the configuration stream.
	if strings.Contains(out1.String(), "click-align:") {
		t.Error("diagnostics leaked onto stdout")
	}

	aligned := filepath.Join(dir, "aligned.click")
	if err := os.WriteFile(aligned, out1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2, err2 bytes.Buffer
	if code := run([]string{"-f", aligned}, &out2, &err2); code != 0 {
		t.Fatalf("second run exit %d: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "inserted 0, removed 0") {
		t.Errorf("second run not a no-op: %q", err2.String())
	}
}

// TestAlignToolErrors: a bad input is an exit-1 error on stderr with
// nothing on stdout; a bad flag is a usage error (exit 2).
func TestAlignToolErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-f", filepath.Join(t.TempDir(), "missing.click")}, &out, &errw); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	if out.Len() != 0 {
		t.Errorf("error run wrote %q to stdout", out.String())
	}
	if !strings.Contains(errw.String(), "click-align:") {
		t.Errorf("error not reported on stderr: %q", errw.String())
	}
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
