// Command click-align inserts Align elements wherever a configuration's
// expected packet-data alignment fails an element's requirement (§7.1),
// removes redundant Aligns, and records the proven alignments in an
// AlignmentInfo element.
//
// The aligned configuration goes to -o (stdout by default); the
// inserted/removed summary is a diagnostic and goes to stderr, so the
// tool stays pipeline-clean. The exit status is 0 on success, 1 on any
// error, 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("click-align", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("f", "-", "configuration file (- = stdin)")
	out := fs.String("o", "-", "output file (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		fmt.Fprintf(stderr, "click-align: %v\n", err)
		return 1
	}
	res, err := opt.AlignPass(g, reg)
	if err != nil {
		fmt.Fprintf(stderr, "click-align: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "click-align: inserted %d, removed %d Align element(s)\n", res.Inserted, res.Removed)
	if *out == "" || *out == "-" {
		err = tool.WriteConfigTo(g, stdout)
	} else {
		err = tool.WriteConfig(g, *out)
	}
	if err != nil {
		fmt.Fprintf(stderr, "click-align: %v\n", err)
		return 1
	}
	return 0
}
