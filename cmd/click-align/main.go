// Command click-align inserts Align elements wherever a configuration's
// expected packet-data alignment fails an element's requirement (§7.1),
// removes redundant Aligns, and records the proven alignments in an
// AlignmentInfo element.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-align", err)
	}
	res, err := opt.AlignPass(g, reg)
	if err != nil {
		tool.Fail("click-align", err)
	}
	fmt.Fprintf(os.Stderr, "click-align: inserted %d, removed %d Align element(s)\n", res.Inserted, res.Removed)
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-align", err)
	}
}
