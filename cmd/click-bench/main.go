// Command click-bench regenerates the paper's tables and figures
// (§4, §8) on the simulated testbed. Run with -experiment all for the
// full evaluation, or name one of: fastclassifier, vcall, fig8, fig9,
// fig10, fig11, fig12, fig13, ablation, parallel, scaling, adaptive,
// fusion, flowcache, tenants.
//
// The parallel, scaling, adaptive, fusion, flowcache, and tenants
// experiments also write machine-readable results when given -json
// (e.g. -experiment scaling -json BENCH_scaling.json, or -experiment
// tenants -json BENCH_tenants.json for the multi-tenant isolation
// sweep).
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiment, the usual way to see where the wall-clock experiments
// (parallel, scaling, adaptive) actually spend their time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/experiments"
)

func run() error {
	name := flag.String("experiment", "all", "experiment to run")
	jsonPath := flag.String("json", "", "also write JSON results to this file (parallel, scaling, and adaptive experiments)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the experiment) to this file")
	flag.Parse()
	experiments.JSONPath = *jsonPath

	fn, ok := experiments.Experiments[*name]
	if !ok {
		var names []string
		for n := range experiments.Experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown experiment %q (have: %s)", *name, strings.Join(names, ", "))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(os.Stdout); err != nil {
		return err
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // report live heap, not garbage awaiting collection
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "click-bench: %v\n", err)
		os.Exit(1)
	}
}
