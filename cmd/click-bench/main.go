// Command click-bench regenerates the paper's tables and figures
// (§4, §8) on the simulated testbed. Run with -experiment all for the
// full evaluation, or name one of: fastclassifier, vcall, fig8, fig9,
// fig10, fig11, fig12, fig13, ablation, parallel, adaptive.
//
// The parallel and adaptive experiments also write machine-readable
// results when given -json (e.g. -experiment adaptive -json
// BENCH_adaptive.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

func main() {
	name := flag.String("experiment", "all", "experiment to run")
	jsonPath := flag.String("json", "", "also write JSON results to this file (parallel and adaptive experiments)")
	flag.Parse()
	experiments.JSONPath = *jsonPath

	fn, ok := experiments.Experiments[*name]
	if !ok {
		var names []string
		for n := range experiments.Experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "click-bench: unknown experiment %q (have: %s)\n",
			*name, strings.Join(names, ", "))
		os.Exit(1)
	}
	if err := fn(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "click-bench: %v\n", err)
		os.Exit(1)
	}
}
