// Command click-fastclassifier compiles a configuration's classifiers
// into specialized element classes (§4). It reads a configuration on
// standard input and writes the rewritten configuration, with the
// generated source attached as an archive, to standard output.
package main

import (
	"flag"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-fastclassifier", err)
	}
	if err := opt.FastClassifier(g, reg); err != nil {
		tool.Fail("click-fastclassifier", err)
	}
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-fastclassifier", err)
	}
}
