// Command click-flatten compiles away compound element abstractions,
// writing the flat configuration to standard output. (Elaboration
// always flattens, so this tool is parse-and-unparse.)
package main

import (
	"flag"

	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	g, err := tool.ReadConfig(*file, tool.Registry())
	if err != nil {
		tool.Fail("click-flatten", err)
	}
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-flatten", err)
	}
}
