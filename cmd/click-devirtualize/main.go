// Command click-devirtualize replaces virtual packet-transfer calls
// with direct calls (§6.1), generating one specialized class per group
// of elements that can share code. It should be the last optimizer in a
// chain, since it cements the configuration's element order.
package main

import (
	"flag"
	"strings"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	exclude := flag.String("x", "", "comma-separated element names to leave virtual")
	flag.Parse()

	excl := map[string]bool{}
	for _, n := range strings.Split(*exclude, ",") {
		if n = strings.TrimSpace(n); n != "" {
			excl[n] = true
		}
	}
	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-devirtualize", err)
	}
	if err := opt.Devirtualize(g, reg, excl); err != nil {
		tool.Fail("click-devirtualize", err)
	}
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-devirtualize", err)
	}
}
