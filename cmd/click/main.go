// Command click runs a router configuration. Without simulated devices
// the configuration must drive itself (InfiniteSource and friends); the
// -rounds flag bounds the task loop. Archives produced by the optimizer
// tools are installed (generated element classes registered) before the
// configuration is parsed, as the Click driver compiles and links
// attached code (§5.2).
//
// Usage:
//
//	click [-f config] [-rounds n] [-batch n] [-workers n] [-trace n] [-fuse]
//	      [-flowcache] [-hotswap config] [-hotswap-after n] [-adapt]
//	      [-adapt-interval n] [-adapt-flowcache] [-serve addr]
//	      [-backend sim|pcap|udp] [-pcap-in [dev=]file]... [-pcap-out [dev=]file]...
//	      [-udp-map dev=local[/peer]]... [-duration d]
//	      [-h element.handler]... [-counters] [-report] [config]
//
// -fuse applies the click-fuse whole-path classifier fusion pass to the
// configuration before building it, the in-driver shortcut for piping
// through click-fuse first. -flowcache installs the flow fast path: an
// exact-match cache in front of the pipeline that learns each flow's
// net transformation from its first packet and short-circuits the rest,
// with guard generations keeping it coherent across route, ARP, and
// configuration changes.
//
// -batch moves packets between elements in bursts of up to n (amortized
// dispatch); -workers runs the task scheduler on n workers with work
// stealing. -counters prints the familiar per-element handler dump;
// -report instead emits the full telemetry tree — per-element packet,
// byte, drop, and cycle counters, their totals, any optimizer pass
// reports carried in the configuration archive, and (with -trace) the
// recorded per-packet element paths — as one JSON document on stdout.
//
// -hotswap names a replacement configuration to install atomically
// mid-run at a task-round boundary: queue contents, ARP tables,
// counters, flow-cache entries, and live handler settings transplant to
// same-named elements (Click's take_state). The swap triggers on
// SIGHUP, or after -hotswap-after active rounds when that is nonzero.
// -adapt runs the telemetry-driven re-optimization controller: every
// -adapt-interval active rounds it samples the live element counters,
// decides which optimizer passes the traffic justifies, and hot-swaps
// the re-optimized configuration in. -adapt-flowcache additionally lets
// the controller install the flow fast path once the router runs hot.
//
// -serve runs the driver as a multi-tenant server instead: tenant
// configurations are created, inspected, hot-swapped, and deleted over
// an HTTP/JSON management API on the given address (POST/PUT/DELETE
// /tenants/{id}, GET /tenants/{id}/report, GET/POST
// /tenants/{id}/elements/{name}/{handler}). Each tenant's elements live
// in a combined router under a "{id}/" name prefix; a configuration
// named on the command line is installed as tenant "default".
//
// Device elements (PollDevice, FromDevice, ToDevice) referencing devices
// that no caller provided are bound to idle in-memory devices, so
// hardware-facing configurations can be load-checked and reported on
// standalone. -backend selects real packet I/O instead: "pcap" replays
// capture files into devices (-pcap-in [dev=]file; a bare file feeds the
// first input device) and records their transmissions (-pcap-out
// [dev=]file; a bare file is one aggregate capture with deterministic
// counter timestamps), "udp" binds devices to localhost sockets
// (-udp-map dev=local[/peer]) and keeps the driver alive for -duration
// waiting for traffic. Backends move frames outside the cost model and
// charge zero model cycles, so simulation calibration is unaffected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	pktio "repro/internal/io"
	"repro/internal/lang"
	"repro/internal/mgmt"
	"repro/internal/opt"
	"repro/internal/packet"
	"repro/internal/tool"
)

type stringList []string

func (h *stringList) String() string     { return strings.Join(*h, ",") }
func (h *stringList) Set(s string) error { *h = append(*h, s); return nil }

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	rounds := flag.Int("rounds", 100000, "maximum task-loop rounds")
	counters := flag.Bool("counters", true, "print element counters on exit")
	report := flag.Bool("report", false, "emit the telemetry report (elements, totals, pass reports) as JSON")
	traceCap := flag.Int("trace", 0, "record per-packet element paths (ring buffer of n records)")
	batch := flag.Int("batch", 1, "move packets between elements in bursts of up to this size")
	workers := flag.Int("workers", 1, "task scheduler workers (work stealing when > 1)")
	hotswapFile := flag.String("hotswap", "", "replacement configuration to hot-swap in mid-run (on SIGHUP, or after -hotswap-after rounds)")
	hotswapAfter := flag.Int("hotswap-after", 0, "hot-swap the -hotswap configuration after this many active rounds (0 = only on SIGHUP)")
	fuse := flag.Bool("fuse", false, "fuse classification runs into decision diagrams before building")
	flowcache := flag.Bool("flowcache", false, "install the flow fast path (exact-match cache with guarded invalidation) before building")
	adapt := flag.Bool("adapt", false, "run the adaptive re-optimization controller")
	adaptEvery := flag.Int("adapt-interval", 2000, "active rounds between adaptive telemetry samples")
	adaptFlowCache := flag.Bool("adapt-flowcache", false, "let the adaptive controller install the flow fast path when the router runs hot")
	serveAddr := flag.String("serve", "", "run as a multi-tenant server: listen on ADDR for the HTTP/JSON management API instead of running one configuration")
	fullRebuild := flag.Bool("full-rebuild", false, "with -serve: rebuild the whole combined router on every tenant operation instead of patching incrementally")
	noShare := flag.Bool("no-share", false, "with -serve: disable cross-tenant classifier sharing (private fused diagrams per tenant)")
	backend := flag.String("backend", "sim", "device backend: sim (idle in-memory), pcap (replay/capture files), udp (localhost sockets)")
	duration := flag.Duration("duration", time.Second, "wall-clock bound for -backend udp runs (ignored by sim and pcap)")
	var reads, pcapIns, pcapOuts, udpMaps stringList
	flag.Var(&reads, "h", "read handler \"element.name\" after the run (repeatable)")
	flag.Var(&pcapIns, "pcap-in", "replay a capture into a device: [dev=]file (repeatable; bare file = first input device)")
	flag.Var(&pcapOuts, "pcap-out", "capture a device's transmissions: [dev=]file (repeatable; bare file = one aggregate capture)")
	flag.Var(&udpMaps, "udp-map", "bind a device to UDP sockets: dev=local[/peer] (repeatable, comma-separable)")
	flag.Parse()
	if flag.NArg() > 1 {
		tool.Fail("click", fmt.Errorf("unexpected arguments: %v", flag.Args()[1:]))
	}
	if flag.NArg() == 1 {
		*file = flag.Arg(0)
	}
	if *serveAddr != "" {
		if err := runServe(*serveAddr, *file, *workers, *batch, *fullRebuild, *noShare); err != nil {
			tool.Fail("click", err)
		}
		return
	}

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click", err)
	}
	if *fuse {
		if err := opt.Fuse(g, reg); err != nil {
			tool.Fail("click", err)
		}
	}
	if *flowcache {
		if err := opt.InstallFlowCache(g, reg); err != nil {
			tool.Fail("click", err)
		}
	}
	bk, err := newBackendSet(*backend, pcapIns, pcapOuts, udpMaps)
	if err != nil {
		tool.Fail("click", err)
	}
	env, err := bk.provision(g)
	if err != nil {
		tool.Fail("click", err)
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Burst: *batch, Env: env})
	if err != nil {
		tool.Fail("click", err)
	}
	var tracer *core.Tracer
	if *traceCap > 0 {
		tracer = rt.EnableTracing(*traceCap)
	}
	sched, err := core.NewScheduler(rt, *workers)
	if err != nil {
		tool.Fail("click", err)
	}
	if *hotswapFile != "" {
		// SIGHUP swaps in the replacement at the next round boundary, the
		// way a live Click reads a new configuration from /proc.
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGHUP)
		go func() {
			for range ch {
				next, err := buildReplacement(*hotswapFile, env, *batch)
				if err != nil {
					fmt.Fprintf(os.Stderr, "click: hotswap: %v\n", err)
					continue
				}
				sched.RequestHotswap(next)
			}
		}()
	}
	var ctrl *opt.Adaptive
	if *adapt {
		opts := opt.DefaultAdaptiveOptions()
		opts.EnableFlowCache = *adaptFlowCache
		ctrl = opt.NewAdaptive(opts)
	}
	applied := map[string]bool{}
	// Socket-backed routers idle between datagrams rather than running
	// dry, so the udp backend waits out -duration instead of exiting at
	// the first idle round.
	udpMode := *backend == "udp"
	deadline := time.Now().Add(*duration)
	var ran int
	for ran < *rounds {
		if !sched.RunRound() {
			if !udpMode || !time.Now().Before(deadline) {
				break
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		ran++
		if *hotswapFile != "" && *hotswapAfter > 0 && ran == *hotswapAfter {
			next, err := buildReplacement(*hotswapFile, env, *batch)
			if err != nil {
				tool.Fail("click", err)
			}
			sched.RequestHotswap(next)
		}
		if ctrl != nil && ran%*adaptEvery == 0 {
			live := sched.Router()
			d := ctrl.Observe(live.Graph, live.StatsReport())
			// Each pass is worth applying once; the controller keeps
			// seeing hot traffic afterwards, but re-running an applied
			// pass would only churn the router.
			d.FastClassifier = d.FastClassifier && !applied["fastclassifier"]
			d.Devirtualize = d.Devirtualize && !applied["devirtualize"]
			d.Undead = d.Undead && !applied["undead"]
			d.Fuse = d.Fuse && !applied["fuse"]
			d.FlowCache = d.FlowCache && !applied["flowcache"]
			if d.Any() {
				ng, areg, err := opt.Reoptimize(live.Graph, d)
				if err != nil {
					tool.Fail("click", err)
				}
				next, err := core.Build(ng, areg, core.BuildOptions{Burst: *batch, Env: env})
				if err != nil {
					tool.Fail("click", err)
				}
				sched.RequestHotswap(next)
				if d.FastClassifier {
					applied["fastclassifier"] = true
				}
				if d.Devirtualize {
					applied["devirtualize"] = true
				}
				if d.Undead {
					applied["undead"] = true
				}
				if d.Fuse {
					applied["fuse"] = true
				}
				if d.FlowCache {
					applied["flowcache"] = true
				}
				fmt.Fprintf(os.Stderr, "click: adapt: %s\n", strings.Join(d.Reasons, "; "))
			}
		}
	}
	if err := sched.SwapErr(); err != nil {
		tool.Fail("click", err)
	}
	rt = sched.Router()
	fmt.Fprintf(os.Stderr, "click: ran %d active task rounds\n", ran)
	defer rt.Close()
	// Close backends before reporting so capture files are flushed and
	// socket pumps stop.
	if err := bk.Close(); err != nil {
		tool.Fail("click", err)
	}

	for _, path := range reads {
		v, err := rt.ReadHandler(path)
		if err != nil {
			tool.Fail("click", err)
		}
		fmt.Printf("%s: %s\n", path, v)
	}
	if *report {
		if err := printJSONReport(rt, ran, tracer); err != nil {
			tool.Fail("click", err)
		}
		return
	}
	if *counters && len(reads) == 0 {
		printCounters(rt)
	}
}

// runServe runs the multi-tenant management plane: an empty combined
// router pumped in the background, administered entirely over the
// HTTP/JSON API. A configuration file named on the command line (but
// not the "-" stdin default, so a bare "click -serve :8080" starts
// empty) is installed as tenant "default" before serving.
func runServe(addr, file string, workers, batch int, fullRebuild, noShare bool) error {
	p, err := mgmt.NewPlane(mgmt.Options{
		Registry:    tool.Registry(),
		Workers:     workers,
		Burst:       batch,
		FullRebuild: fullRebuild,
		NoShare:     noShare,
	})
	if err != nil {
		return err
	}
	if file != "-" {
		text, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		if err := p.Create("default", string(text), mgmt.Limits{}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "click: serving %s as tenant \"default\"\n", file)
	}
	p.Start()
	defer p.Stop()

	srv := &http.Server{Addr: addr, Handler: p.Handler()}
	// SIGINT/SIGTERM stop the listener so the deferred plane shutdown
	// quiesces the dataplane cleanly.
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		srv.Close()
	}()
	fmt.Fprintf(os.Stderr, "click: management API on %s\n", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// buildReplacement reads and assembles a hot-swap replacement router.
// Devices the running router already provisioned keep their identity
// (the replacement binds the same rings); device names only the new
// configuration references get fresh idle devices.
func buildReplacement(file string, liveEnv map[string]interface{}, batch int) (*core.Router, error) {
	reg := tool.Registry()
	g, err := tool.ReadConfig(file, reg)
	if err != nil {
		return nil, err
	}
	env := provisionDevices(g)
	for k, v := range liveEnv {
		env[k] = v
	}
	return core.Build(g, reg, core.BuildOptions{Burst: batch, Env: env})
}

// jsonReport is the document click -report emits: the live telemetry
// tree plus whatever diagnostics the optimizer passes archived.
type jsonReport struct {
	TaskRounds  int                       `json:"task_rounds"`
	Elements    []core.ElementStatsReport `json:"elements"`
	Totals      core.StatsTotals          `json:"totals"`
	PassReports []*opt.PassReport         `json:"pass_reports,omitempty"`
	Trace       []core.TraceRecord        `json:"trace,omitempty"`
}

func printJSONReport(rt *core.Router, ran int, tracer *core.Tracer) error {
	elems := rt.StatsReport()
	rep := jsonReport{
		TaskRounds: ran,
		Elements:   elems,
		Totals:     core.Totals(elems),
	}
	passes, err := opt.Reports(rt.Graph)
	if err != nil {
		return err
	}
	rep.PassReports = passes
	if tracer != nil {
		rep.Trace = tracer.Records()
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = os.Stdout.Write(blob)
	return err
}

// printCounters dumps every element's counter-like handlers, the way
// read-handler dumps of a live Click look.
func printCounters(rt *core.Router) {
	for _, i := range rt.Graph.LiveIndices() {
		name := rt.Graph.Element(i).Name
		names, err := rt.HandlerNames(name)
		if err != nil {
			continue
		}
		var parts []string
		for _, h := range names {
			switch h {
			case "class", "config", "name", "program", "table":
				continue // verbose or implicit
			}
			// HandlerPath escapes element names containing handler-path
			// metacharacters ('.', '%'), so combined configurations whose
			// element names carry prefixes round-trip unambiguously.
			v, err := rt.ReadHandler(core.HandlerPath(name, h))
			if err != nil {
				continue // write-only
			}
			parts = append(parts, fmt.Sprintf("%s %s", h, v))
		}
		if len(parts) > 0 {
			fmt.Printf("%-20s %-16s %s\n", name, rt.Graph.Element(i).Class, strings.Join(parts, ", "))
		}
	}
}

// deviceClasses are the element classes that bind a named device from
// the router environment at initialization.
var deviceClasses = map[string]bool{
	"PollDevice": true,
	"FromDevice": true,
	"ToDevice":   true,
}

// isDeviceClass reports whether class binds a device, seeing through
// the "_dvN" suffix click-devirtualize appends to specialized classes.
func isDeviceClass(class string) bool {
	if deviceClasses[class] {
		return true
	}
	if i := strings.LastIndex(class, "_dv"); i > 0 {
		if _, err := strconv.Atoi(class[i+3:]); err == nil {
			return deviceClasses[class[:i]]
		}
	}
	return false
}

// inputClasses are the device classes that receive frames from a device
// (as opposed to ToDevice, which only transmits).
var inputClasses = map[string]bool{
	"PollDevice": true,
	"FromDevice": true,
}

// isInputClass reports whether class reads from a device, seeing through
// devirtualized "_dvN" class names.
func isInputClass(class string) bool {
	if inputClasses[class] {
		return true
	}
	if i := strings.LastIndex(class, "_dv"); i > 0 {
		if _, err := strconv.Atoi(class[i+3:]); err == nil {
			return inputClasses[class[:i]]
		}
	}
	return false
}

// deviceNames returns the distinct device names a configuration
// references, in declaration order, plus the subset referenced by an
// input-side element (also in order).
func deviceNames(g *graph.Router) (all, inputs []string) {
	seen := map[string]bool{}
	seenIn := map[string]bool{}
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if !isDeviceClass(e.Class) {
			continue
		}
		args := lang.SplitConfig(e.Config)
		if len(args) == 0 {
			continue
		}
		name := strings.TrimSpace(args[0])
		if name == "" {
			continue
		}
		if !seen[name] {
			seen[name] = true
			all = append(all, name)
		}
		if isInputClass(e.Class) && !seenIn[name] {
			seenIn[name] = true
			inputs = append(inputs, name)
		}
	}
	return all, inputs
}

// sinkFile pairs a capture sink with the path it writes, for the exit
// summary.
type sinkFile struct {
	path string
	sink *pktio.CaptureSink
}

// udpSpec is one -udp-map binding.
type udpSpec struct {
	local, peer string
}

// backendSet holds the parsed backend configuration and every backend
// and capture sink it provisions, so the driver can flush and close
// them after the run.
type backendSet struct {
	mode string

	ins        map[string][]pktio.Record // -pcap-in dev=file, preloaded
	bareIn     []pktio.Record            // -pcap-in file (first input device)
	haveBareIn bool
	outPaths   map[string]string // -pcap-out dev=file
	aggPath    string            // -pcap-out file (aggregate)
	udp        map[string]udpSpec

	sinks    []*sinkFile
	backends []pktio.Backend
}

// newBackendSet parses the -backend family of flags. Replay files are
// read eagerly so a bad capture fails before the router builds.
func newBackendSet(mode string, pcapIns, pcapOuts, udpMaps []string) (*backendSet, error) {
	b := &backendSet{
		mode:     mode,
		ins:      map[string][]pktio.Record{},
		outPaths: map[string]string{},
		udp:      map[string]udpSpec{},
	}
	switch mode {
	case "sim", "pcap", "udp":
	default:
		return nil, fmt.Errorf("unknown backend %q (want sim, pcap, or udp)", mode)
	}
	if mode != "pcap" && (len(pcapIns) > 0 || len(pcapOuts) > 0) {
		return nil, fmt.Errorf("-pcap-in/-pcap-out require -backend pcap")
	}
	if mode != "udp" && len(udpMaps) > 0 {
		return nil, fmt.Errorf("-udp-map requires -backend udp")
	}
	for _, entry := range pcapIns {
		dev, file, ok := strings.Cut(entry, "=")
		if !ok {
			if b.haveBareIn {
				return nil, fmt.Errorf("-pcap-in: only one bare replay file allowed; name devices as dev=file")
			}
			recs, err := pktio.ReadPcapFile(entry)
			if err != nil {
				return nil, err
			}
			b.bareIn, b.haveBareIn = recs, true
			continue
		}
		if _, dup := b.ins[dev]; dup {
			return nil, fmt.Errorf("-pcap-in: device %q mapped twice", dev)
		}
		recs, err := pktio.ReadPcapFile(file)
		if err != nil {
			return nil, err
		}
		b.ins[dev] = recs
	}
	for _, entry := range pcapOuts {
		dev, file, ok := strings.Cut(entry, "=")
		if !ok {
			if b.aggPath != "" {
				return nil, fmt.Errorf("-pcap-out: only one aggregate capture file allowed; name devices as dev=file")
			}
			b.aggPath = entry
			continue
		}
		if _, dup := b.outPaths[dev]; dup {
			return nil, fmt.Errorf("-pcap-out: device %q mapped twice", dev)
		}
		b.outPaths[dev] = file
	}
	for _, entry := range udpMaps {
		for _, one := range strings.Split(entry, ",") {
			if one == "" {
				continue
			}
			dev, addrs, ok := strings.Cut(one, "=")
			if !ok {
				return nil, fmt.Errorf("-udp-map: %q is not dev=local[/peer]", one)
			}
			if _, dup := b.udp[dev]; dup {
				return nil, fmt.Errorf("-udp-map: device %q mapped twice", dev)
			}
			local, peer, _ := strings.Cut(addrs, "/")
			if local == "" {
				return nil, fmt.Errorf("-udp-map: %q has no local address", one)
			}
			b.udp[dev] = udpSpec{local: local, peer: peer}
		}
	}
	return b, nil
}

// provision builds the router device environment for the selected
// backend. Devices the flags do not map fall back to idle in-memory
// devices (sim, udp) or to a replay-less discard backend (pcap), so any
// configuration still initializes.
func (b *backendSet) provision(g *graph.Router) (map[string]interface{}, error) {
	if b.mode == "sim" {
		return provisionDevices(g), nil
	}
	all, inputs := deviceNames(g)
	env := map[string]interface{}{}
	switch b.mode {
	case "pcap":
		if b.haveBareIn {
			if len(inputs) == 0 {
				return nil, fmt.Errorf("-pcap-in: configuration has no input device to replay into")
			}
			if _, dup := b.ins[inputs[0]]; dup {
				return nil, fmt.Errorf("-pcap-in: device %q mapped both bare and by name", inputs[0])
			}
			b.ins[inputs[0]] = b.bareIn
		}
		var agg *pktio.CaptureSink
		if b.aggPath != "" {
			s, err := pktio.CreateCaptureFile(b.aggPath)
			if err != nil {
				return nil, err
			}
			agg = s
			b.sinks = append(b.sinks, &sinkFile{path: b.aggPath, sink: s})
		}
		used := map[string]bool{}
		for _, name := range all {
			sink := agg
			if path, ok := b.outPaths[name]; ok {
				s, err := pktio.CreateCaptureFile(path)
				if err != nil {
					return nil, err
				}
				sink = s
				b.sinks = append(b.sinks, &sinkFile{path: path, sink: s})
			}
			be := pktio.NewPcap(b.ins[name], sink)
			dev, err := pktio.OpenDevice(name, be)
			if err != nil {
				return nil, err
			}
			b.backends = append(b.backends, be)
			env["device:"+name] = dev
			used[name] = true
		}
		for name := range b.ins {
			if !used[name] {
				return nil, fmt.Errorf("-pcap-in: device %q not in configuration", name)
			}
		}
		for name := range b.outPaths {
			if !used[name] {
				return nil, fmt.Errorf("-pcap-out: device %q not in configuration", name)
			}
		}
	case "udp":
		used := map[string]bool{}
		for _, name := range all {
			spec, ok := b.udp[name]
			if !ok {
				env["device:"+name] = &idleDevice{name: name}
				continue
			}
			be := pktio.NewUDP(spec.local, spec.peer)
			dev, err := pktio.OpenDevice(name, be)
			if err != nil {
				return nil, err
			}
			b.backends = append(b.backends, be)
			env["device:"+name] = dev
			used[name] = true
			fmt.Fprintf(os.Stderr, "click: %s bound to %s\n", name, be.LocalAddr())
		}
		for name := range b.udp {
			if !used[name] {
				return nil, fmt.Errorf("-udp-map: device %q not in configuration", name)
			}
		}
	}
	return env, nil
}

// Close shuts down socket pumps and flushes capture files, reporting
// each capture's frame count.
func (b *backendSet) Close() error {
	var first error
	for _, be := range b.backends {
		if err := be.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, sf := range b.sinks {
		n := sf.sink.Frames()
		if err := sf.sink.Close(); err != nil && first == nil {
			first = err
		}
		fmt.Fprintf(os.Stderr, "click: captured %d frames to %s\n", n, sf.path)
	}
	b.backends, b.sinks = nil, nil
	return first
}

// provisionDevices builds a router environment containing an idle
// in-memory device for every device name the configuration references,
// so device-facing configurations initialize and run (idle) standalone.
func provisionDevices(g *graph.Router) map[string]interface{} {
	env := map[string]interface{}{}
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if !isDeviceClass(e.Class) {
			continue
		}
		args := lang.SplitConfig(e.Config)
		if len(args) == 0 {
			continue
		}
		name := strings.TrimSpace(args[0])
		if name == "" {
			continue
		}
		key := "device:" + name
		if _, ok := env[key]; !ok {
			env[key] = &idleDevice{name: name}
		}
	}
	return env
}

// idleDevice is an in-memory elements.Device with an empty receive ring
// and a transmit ring that discards (and counts) everything.
type idleDevice struct {
	name string
	sent int64
}

func (d *idleDevice) DeviceName() string        { return d.name }
func (d *idleDevice) RxDequeue() *packet.Packet { return nil }
func (d *idleDevice) TxEnqueue(p *packet.Packet) bool {
	d.sent++
	p.Kill()
	return true
}
func (d *idleDevice) TxRoom() bool { return true }
func (d *idleDevice) TxClean() int { return 0 }

var _ elements.Device = (*idleDevice)(nil)
