// Command click runs a router configuration. Without simulated devices
// the configuration must drive itself (InfiniteSource and friends); the
// -rounds flag bounds the task loop. Archives produced by the optimizer
// tools are installed (generated element classes registered) before the
// configuration is parsed, as the Click driver compiles and links
// attached code (§5.2).
//
// Usage:
//
//	click [-f config] [-rounds n] [-batch n] [-workers n] [-h element.handler]... [-report]
//
// -batch moves packets between elements in bursts of up to n (amortized
// dispatch); -workers runs the task scheduler on n workers with work
// stealing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/tool"
)

type handlerList []string

func (h *handlerList) String() string     { return strings.Join(*h, ",") }
func (h *handlerList) Set(s string) error { *h = append(*h, s); return nil }

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	rounds := flag.Int("rounds", 100000, "maximum task-loop rounds")
	report := flag.Bool("report", true, "print element counters on exit")
	batch := flag.Int("batch", 1, "move packets between elements in bursts of up to this size")
	workers := flag.Int("workers", 1, "task scheduler workers (work stealing when > 1)")
	var reads handlerList
	flag.Var(&reads, "h", "read handler \"element.name\" after the run (repeatable)")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click", err)
	}
	rt, err := core.Build(g, reg, core.BuildOptions{Burst: *batch})
	if err != nil {
		tool.Fail("click", err)
	}
	var ran int
	if *workers > 1 {
		if ran, err = rt.RunParallelUntilIdle(*workers, *rounds); err != nil {
			tool.Fail("click", err)
		}
	} else {
		ran = rt.RunUntilIdle(*rounds)
	}
	fmt.Fprintf(os.Stderr, "click: ran %d active task rounds\n", ran)
	defer rt.Close()

	for _, path := range reads {
		v, err := rt.ReadHandler(path)
		if err != nil {
			tool.Fail("click", err)
		}
		fmt.Printf("%s: %s\n", path, v)
	}
	if *report && len(reads) == 0 {
		printReport(rt)
	}
}

// printReport dumps every element's counter-like handlers, the way
// read-handler dumps of a live Click look.
func printReport(rt *core.Router) {
	for _, i := range rt.Graph.LiveIndices() {
		name := rt.Graph.Element(i).Name
		names, err := rt.HandlerNames(name)
		if err != nil {
			continue
		}
		var parts []string
		for _, h := range names {
			switch h {
			case "class", "config", "name", "program", "table":
				continue // verbose or implicit
			}
			v, err := rt.ReadHandler(name + "." + h)
			if err != nil {
				continue // write-only
			}
			parts = append(parts, fmt.Sprintf("%s %s", h, v))
		}
		if len(parts) > 0 {
			fmt.Printf("%-20s %-16s %s\n", name, rt.Graph.Element(i).Class, strings.Join(parts, ", "))
		}
	}
}
