// Command click runs a router configuration. Without simulated devices
// the configuration must drive itself (InfiniteSource and friends); the
// -rounds flag bounds the task loop. Archives produced by the optimizer
// tools are installed (generated element classes registered) before the
// configuration is parsed, as the Click driver compiles and links
// attached code (§5.2).
//
// Usage:
//
//	click [-f config] [-rounds n] [-batch n] [-workers n] [-trace n] [-fuse]
//	      [-flowcache] [-hotswap config] [-hotswap-after n] [-adapt]
//	      [-adapt-interval n] [-adapt-flowcache]
//	      [-h element.handler]... [-counters] [-report]
//
// -fuse applies the click-fuse whole-path classifier fusion pass to the
// configuration before building it, the in-driver shortcut for piping
// through click-fuse first. -flowcache installs the flow fast path: an
// exact-match cache in front of the pipeline that learns each flow's
// net transformation from its first packet and short-circuits the rest,
// with guard generations keeping it coherent across route, ARP, and
// configuration changes.
//
// -batch moves packets between elements in bursts of up to n (amortized
// dispatch); -workers runs the task scheduler on n workers with work
// stealing. -counters prints the familiar per-element handler dump;
// -report instead emits the full telemetry tree — per-element packet,
// byte, drop, and cycle counters, their totals, any optimizer pass
// reports carried in the configuration archive, and (with -trace) the
// recorded per-packet element paths — as one JSON document on stdout.
//
// -hotswap names a replacement configuration to install atomically
// mid-run at a task-round boundary: queue contents, ARP tables,
// counters, flow-cache entries, and live handler settings transplant to
// same-named elements (Click's take_state). The swap triggers on
// SIGHUP, or after -hotswap-after active rounds when that is nonzero.
// -adapt runs the telemetry-driven re-optimization controller: every
// -adapt-interval active rounds it samples the live element counters,
// decides which optimizer passes the traffic justifies, and hot-swaps
// the re-optimized configuration in. -adapt-flowcache additionally lets
// the controller install the flow fast path once the router runs hot.
//
// Device elements (PollDevice, FromDevice, ToDevice) referencing devices
// that no caller provided are bound to idle in-memory devices, so
// hardware-facing configurations can be load-checked and reported on
// standalone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/elements"
	"repro/internal/graph"
	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/packet"
	"repro/internal/tool"
)

type handlerList []string

func (h *handlerList) String() string     { return strings.Join(*h, ",") }
func (h *handlerList) Set(s string) error { *h = append(*h, s); return nil }

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	rounds := flag.Int("rounds", 100000, "maximum task-loop rounds")
	counters := flag.Bool("counters", true, "print element counters on exit")
	report := flag.Bool("report", false, "emit the telemetry report (elements, totals, pass reports) as JSON")
	traceCap := flag.Int("trace", 0, "record per-packet element paths (ring buffer of n records)")
	batch := flag.Int("batch", 1, "move packets between elements in bursts of up to this size")
	workers := flag.Int("workers", 1, "task scheduler workers (work stealing when > 1)")
	hotswapFile := flag.String("hotswap", "", "replacement configuration to hot-swap in mid-run (on SIGHUP, or after -hotswap-after rounds)")
	hotswapAfter := flag.Int("hotswap-after", 0, "hot-swap the -hotswap configuration after this many active rounds (0 = only on SIGHUP)")
	fuse := flag.Bool("fuse", false, "fuse classification runs into decision diagrams before building")
	flowcache := flag.Bool("flowcache", false, "install the flow fast path (exact-match cache with guarded invalidation) before building")
	adapt := flag.Bool("adapt", false, "run the adaptive re-optimization controller")
	adaptEvery := flag.Int("adapt-interval", 2000, "active rounds between adaptive telemetry samples")
	adaptFlowCache := flag.Bool("adapt-flowcache", false, "let the adaptive controller install the flow fast path when the router runs hot")
	var reads handlerList
	flag.Var(&reads, "h", "read handler \"element.name\" after the run (repeatable)")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click", err)
	}
	if *fuse {
		if err := opt.Fuse(g, reg); err != nil {
			tool.Fail("click", err)
		}
	}
	if *flowcache {
		if err := opt.InstallFlowCache(g, reg); err != nil {
			tool.Fail("click", err)
		}
	}
	env := provisionDevices(g)
	rt, err := core.Build(g, reg, core.BuildOptions{Burst: *batch, Env: env})
	if err != nil {
		tool.Fail("click", err)
	}
	var tracer *core.Tracer
	if *traceCap > 0 {
		tracer = rt.EnableTracing(*traceCap)
	}
	sched, err := core.NewScheduler(rt, *workers)
	if err != nil {
		tool.Fail("click", err)
	}
	if *hotswapFile != "" {
		// SIGHUP swaps in the replacement at the next round boundary, the
		// way a live Click reads a new configuration from /proc.
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGHUP)
		go func() {
			for range ch {
				next, err := buildReplacement(*hotswapFile, env, *batch)
				if err != nil {
					fmt.Fprintf(os.Stderr, "click: hotswap: %v\n", err)
					continue
				}
				sched.RequestHotswap(next)
			}
		}()
	}
	var ctrl *opt.Adaptive
	if *adapt {
		opts := opt.DefaultAdaptiveOptions()
		opts.EnableFlowCache = *adaptFlowCache
		ctrl = opt.NewAdaptive(opts)
	}
	applied := map[string]bool{}
	var ran int
	for ran < *rounds && sched.RunRound() {
		ran++
		if *hotswapFile != "" && *hotswapAfter > 0 && ran == *hotswapAfter {
			next, err := buildReplacement(*hotswapFile, env, *batch)
			if err != nil {
				tool.Fail("click", err)
			}
			sched.RequestHotswap(next)
		}
		if ctrl != nil && ran%*adaptEvery == 0 {
			live := sched.Router()
			d := ctrl.Observe(live.Graph, live.StatsReport())
			// Each pass is worth applying once; the controller keeps
			// seeing hot traffic afterwards, but re-running an applied
			// pass would only churn the router.
			d.FastClassifier = d.FastClassifier && !applied["fastclassifier"]
			d.Devirtualize = d.Devirtualize && !applied["devirtualize"]
			d.Undead = d.Undead && !applied["undead"]
			d.Fuse = d.Fuse && !applied["fuse"]
			d.FlowCache = d.FlowCache && !applied["flowcache"]
			if d.Any() {
				ng, areg, err := opt.Reoptimize(live.Graph, d)
				if err != nil {
					tool.Fail("click", err)
				}
				next, err := core.Build(ng, areg, core.BuildOptions{Burst: *batch, Env: env})
				if err != nil {
					tool.Fail("click", err)
				}
				sched.RequestHotswap(next)
				if d.FastClassifier {
					applied["fastclassifier"] = true
				}
				if d.Devirtualize {
					applied["devirtualize"] = true
				}
				if d.Undead {
					applied["undead"] = true
				}
				if d.Fuse {
					applied["fuse"] = true
				}
				if d.FlowCache {
					applied["flowcache"] = true
				}
				fmt.Fprintf(os.Stderr, "click: adapt: %s\n", strings.Join(d.Reasons, "; "))
			}
		}
	}
	if err := sched.SwapErr(); err != nil {
		tool.Fail("click", err)
	}
	rt = sched.Router()
	fmt.Fprintf(os.Stderr, "click: ran %d active task rounds\n", ran)
	defer rt.Close()

	for _, path := range reads {
		v, err := rt.ReadHandler(path)
		if err != nil {
			tool.Fail("click", err)
		}
		fmt.Printf("%s: %s\n", path, v)
	}
	if *report {
		if err := printJSONReport(rt, ran, tracer); err != nil {
			tool.Fail("click", err)
		}
		return
	}
	if *counters && len(reads) == 0 {
		printCounters(rt)
	}
}

// buildReplacement reads and assembles a hot-swap replacement router.
// Devices the running router already provisioned keep their identity
// (the replacement binds the same rings); device names only the new
// configuration references get fresh idle devices.
func buildReplacement(file string, liveEnv map[string]interface{}, batch int) (*core.Router, error) {
	reg := tool.Registry()
	g, err := tool.ReadConfig(file, reg)
	if err != nil {
		return nil, err
	}
	env := provisionDevices(g)
	for k, v := range liveEnv {
		env[k] = v
	}
	return core.Build(g, reg, core.BuildOptions{Burst: batch, Env: env})
}

// jsonReport is the document click -report emits: the live telemetry
// tree plus whatever diagnostics the optimizer passes archived.
type jsonReport struct {
	TaskRounds  int                       `json:"task_rounds"`
	Elements    []core.ElementStatsReport `json:"elements"`
	Totals      core.StatsTotals          `json:"totals"`
	PassReports []*opt.PassReport         `json:"pass_reports,omitempty"`
	Trace       []core.TraceRecord        `json:"trace,omitempty"`
}

func printJSONReport(rt *core.Router, ran int, tracer *core.Tracer) error {
	elems := rt.StatsReport()
	rep := jsonReport{
		TaskRounds: ran,
		Elements:   elems,
		Totals:     core.Totals(elems),
	}
	passes, err := opt.Reports(rt.Graph)
	if err != nil {
		return err
	}
	rep.PassReports = passes
	if tracer != nil {
		rep.Trace = tracer.Records()
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = os.Stdout.Write(blob)
	return err
}

// printCounters dumps every element's counter-like handlers, the way
// read-handler dumps of a live Click look.
func printCounters(rt *core.Router) {
	for _, i := range rt.Graph.LiveIndices() {
		name := rt.Graph.Element(i).Name
		names, err := rt.HandlerNames(name)
		if err != nil {
			continue
		}
		var parts []string
		for _, h := range names {
			switch h {
			case "class", "config", "name", "program", "table":
				continue // verbose or implicit
			}
			v, err := rt.ReadHandler(name + "." + h)
			if err != nil {
				continue // write-only
			}
			parts = append(parts, fmt.Sprintf("%s %s", h, v))
		}
		if len(parts) > 0 {
			fmt.Printf("%-20s %-16s %s\n", name, rt.Graph.Element(i).Class, strings.Join(parts, ", "))
		}
	}
}

// deviceClasses are the element classes that bind a named device from
// the router environment at initialization.
var deviceClasses = map[string]bool{
	"PollDevice": true,
	"FromDevice": true,
	"ToDevice":   true,
}

// isDeviceClass reports whether class binds a device, seeing through
// the "_dvN" suffix click-devirtualize appends to specialized classes.
func isDeviceClass(class string) bool {
	if deviceClasses[class] {
		return true
	}
	if i := strings.LastIndex(class, "_dv"); i > 0 {
		if _, err := strconv.Atoi(class[i+3:]); err == nil {
			return deviceClasses[class[:i]]
		}
	}
	return false
}

// provisionDevices builds a router environment containing an idle
// in-memory device for every device name the configuration references,
// so device-facing configurations initialize and run (idle) standalone.
func provisionDevices(g *graph.Router) map[string]interface{} {
	env := map[string]interface{}{}
	for _, i := range g.LiveIndices() {
		e := g.Element(i)
		if !isDeviceClass(e.Class) {
			continue
		}
		args := lang.SplitConfig(e.Config)
		if len(args) == 0 {
			continue
		}
		name := strings.TrimSpace(args[0])
		if name == "" {
			continue
		}
		key := "device:" + name
		if _, ok := env[key]; !ok {
			env[key] = &idleDevice{name: name}
		}
	}
	return env
}

// idleDevice is an in-memory elements.Device with an empty receive ring
// and a transmit ring that discards (and counts) everything.
type idleDevice struct {
	name string
	sent int64
}

func (d *idleDevice) DeviceName() string        { return d.name }
func (d *idleDevice) RxDequeue() *packet.Packet { return nil }
func (d *idleDevice) TxEnqueue(p *packet.Packet) bool {
	d.sent++
	p.Kill()
	return true
}
func (d *idleDevice) TxRoom() bool { return true }
func (d *idleDevice) TxClean() int { return 0 }

var _ elements.Device = (*idleDevice)(nil)
