// Command click-undead removes dead code from a configuration (§6.3):
// StaticSwitch branches no packet can take, elements cut off from
// every packet source or sink, and severed Idle plumbing.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-undead", err)
	}
	n := opt.Undead(g, reg)
	fmt.Fprintf(os.Stderr, "click-undead: removed %d element(s)\n", n)
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-undead", err)
	}
}
