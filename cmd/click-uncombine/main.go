// Command click-uncombine extracts one router from a combined
// configuration (§7.2), restoring the device elements at its ends of
// each inter-router link.
package main

import (
	"flag"
	"fmt"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "combined configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	router := flag.String("r", "", "router name to extract (required)")
	flag.Parse()

	if *router == "" {
		tool.Fail("click-uncombine", fmt.Errorf("-r ROUTER is required"))
	}
	g, err := tool.ReadConfig(*file, tool.Registry())
	if err != nil {
		tool.Fail("click-uncombine", err)
	}
	extracted, err := opt.Uncombine(g, *router)
	if err != nil {
		tool.Fail("click-uncombine", err)
	}
	if err := tool.WriteConfig(extracted, *out); err != nil {
		tool.Fail("click-uncombine", err)
	}
}
