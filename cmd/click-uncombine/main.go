// Command click-uncombine extracts one router from a combined
// configuration (§7.2), restoring the device elements at its ends of
// each inter-router link.
//
// The extracted configuration goes to -o (stdout by default);
// diagnostics go to stderr. The exit status is 0 on success, 1 on any
// error, 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("click-uncombine", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("f", "-", "combined configuration file (- = stdin)")
	out := fs.String("o", "-", "output file (- = stdout)")
	router := fs.String("r", "", "router name to extract (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *router == "" {
		fmt.Fprintln(stderr, "click-uncombine: -r ROUTER is required")
		return 2
	}
	g, err := tool.ReadConfig(*file, tool.Registry())
	if err != nil {
		fmt.Fprintf(stderr, "click-uncombine: %v\n", err)
		return 1
	}
	extracted, err := opt.Uncombine(g, *router)
	if err != nil {
		fmt.Fprintf(stderr, "click-uncombine: %v\n", err)
		return 1
	}
	if *out == "" || *out == "-" {
		err = tool.WriteConfigTo(extracted, stdout)
	} else {
		err = tool.WriteConfig(extracted, *out)
	}
	if err != nil {
		fmt.Fprintf(stderr, "click-uncombine: %v\n", err)
		return 1
	}
	return 0
}
