package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/opt"
	"repro/internal/tool"
)

// combinedConfig builds a two-router combined configuration on disk.
func combinedConfig(t *testing.T) string {
	t.Helper()
	ga, err := lang.ParseRouter("s :: InfiniteSource -> td :: ToDevice(eth0);", "a")
	if err != nil {
		t.Fatal(err)
	}
	gb, err := lang.ParseRouter("pd :: PollDevice(eth1) -> d :: Discard;", "b")
	if err != nil {
		t.Fatal(err)
	}
	combined, err := opt.Combine(
		[]opt.RouterInput{{Name: "a", Config: ga}, {Name: "b", Config: gb}},
		[]opt.Link{{FromRouter: "a", FromDev: "eth0", ToRouter: "b", ToDev: "eth1"}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "combined.click")
	if err := tool.WriteConfig(combined, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUncombineExtractsRouter(t *testing.T) {
	path := combinedConfig(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-f", path, "-r", "a"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	cfg := out.String()
	if !strings.Contains(cfg, "ToDevice(eth0)") {
		t.Errorf("extracted router a missing its restored ToDevice:\n%s", cfg)
	}
	if strings.Contains(cfg, "PollDevice") || strings.Contains(cfg, "RouterLink") {
		t.Errorf("router b or link plumbing leaked into extraction:\n%s", cfg)
	}
	// The extraction must itself parse.
	if _, err := lang.ParseRouter(cfg, "extracted"); err != nil {
		t.Errorf("extracted configuration does not parse: %v", err)
	}
}

func TestUncombineErrors(t *testing.T) {
	path := combinedConfig(t)
	var out, errw bytes.Buffer
	if code := run([]string{"-f", path}, &out, &errw); code != 2 {
		t.Errorf("missing -r exit = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-r ROUTER is required") {
		t.Errorf("usage error not reported: %q", errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-f", path, "-r", "nosuch"}, &out, &errw); code != 1 {
		t.Errorf("unknown router exit = %d, want 1", code)
	}
	if out.Len() != 0 {
		t.Errorf("error run wrote %q to stdout", out.String())
	}
	if !strings.Contains(errw.String(), "click-uncombine:") {
		t.Errorf("error not reported on stderr: %q", errw.String())
	}
}
