// Command click-check verifies a configuration: element classes exist,
// port counts are legal, the push/pull assignment is consistent, and
// every port is properly connected. It exits nonzero if problems are
// found.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	runtime := flag.Bool("runtime", false, "also require every class to be instantiable")
	flag.Parse()

	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-check", err)
	}
	var errs []error
	if *runtime {
		errs = opt.CheckInstantiable(g, reg)
	} else {
		errs = opt.Check(g, reg)
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "click-check: %v\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	// Success goes to stdout: errors are diagnostics, the OK verdict is
	// the tool's output (scripts grep for it).
	fmt.Println("click-check: configuration OK")
}
