// Command click-mkconfig emits the repository's standard configurations:
// the Figure 1 IP router (any interface count), the minimal "Simple"
// forwarding configuration, the §4 firewall, and the click-xform
// pattern files.
//
//	click-mkconfig -config iprouter -n 2 > router.click
//	click-mkconfig -config patterns > combo.patterns
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/iprouter"
)

func main() {
	which := flag.String("config", "iprouter", "iprouter | simple | firewall | patterns | arpelim")
	n := flag.Int("n", 2, "number of interfaces (iprouter/simple)")
	flag.Parse()

	switch *which {
	case "iprouter":
		fmt.Print(iprouter.Config(iprouter.Interfaces(*n)))
	case "simple":
		ifs := iprouter.Interfaces(*n)
		fmt.Print(iprouter.SimpleConfig(ifs, iprouter.ForwardPairs(*n)))
	case "firewall":
		fmt.Printf("// The Section 4 17-rule firewall on a standalone filter path.\n")
		fmt.Printf("allowed :: InfiniteSource(1000, 1, 10.0.0.2, 53) -> Strip(14) -> f :: IPFilter(%s) -> c :: Counter -> Discard;\n",
			iprouter.FirewallConfigArg())
		fmt.Printf("denied :: InfiniteSource(1000, 1, 10.9.9.9, 23) -> Strip(14) -> f;\n")
	case "patterns":
		fmt.Print(strings.TrimLeft(iprouter.ComboPatterns, "\n"))
	case "arpelim":
		fmt.Print(strings.TrimLeft(iprouter.ARPElimPatterns, "\n"))
	default:
		fmt.Fprintf(os.Stderr, "click-mkconfig: unknown config %q\n", *which)
		os.Exit(1)
	}
}
