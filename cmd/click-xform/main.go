// Command click-xform replaces occurrences of pattern subgraphs with
// replacement subgraphs (§6.2). Patterns are written as compound
// element classes: class N pairs with class N_Replacement; configs may
// use $wildcards. The builtin combination-element patterns apply when
// no pattern file is given.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/iprouter"
	"repro/internal/opt"
	"repro/internal/tool"
)

func main() {
	file := flag.String("f", "-", "configuration file (- = stdin)")
	out := flag.String("o", "-", "output file (- = stdout)")
	patFile := flag.String("p", "", "pattern file (default: builtin combo patterns)")
	flag.Parse()

	src := iprouter.ComboPatterns
	name := "<builtin combo patterns>"
	if *patFile != "" {
		data, err := os.ReadFile(*patFile)
		if err != nil {
			tool.Fail("click-xform", err)
		}
		src, name = string(data), *patFile
	}
	pairs, err := opt.ParsePatterns(src, name)
	if err != nil {
		tool.Fail("click-xform", err)
	}
	reg := tool.Registry()
	g, err := tool.ReadConfig(*file, reg)
	if err != nil {
		tool.Fail("click-xform", err)
	}
	n := opt.Xform(g, pairs)
	fmt.Fprintf(os.Stderr, "click-xform: %d replacement(s)\n", n)
	if err := tool.WriteConfig(g, *out); err != nil {
		tool.Fail("click-xform", err)
	}
}
